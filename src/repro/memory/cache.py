"""Set-associative cache tag arrays.

Used both for the per-processor L1s and the per-node shared L2.  Lines carry
the coherence state plus the slipstream-specific flags from Section 4 of the
paper:

* ``transparent`` — the line was filled by a transparent reply and is
  visible only to the A-stream (the R-stream must treat it as a miss).
* ``si_hint`` — the directory advised this node to self-invalidate the line
  at the next synchronization point.
* ``written_in_cs`` — the line was last written inside a critical section,
  so a self-invalidation treats it as migratory (invalidate) rather than
  producer-consumer (writeback + downgrade).

States follow a simple MSI convention: ``'I'`` invalid, ``'S'`` shared
(clean), ``'M'`` modified/exclusive.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Callable, Dict, List, Optional

INVALID = "I"
SHARED = "S"
MODIFIED = "M"

_VALID_STATES = (SHARED, MODIFIED)


class CacheLine:
    """One resident cache line."""

    __slots__ = ("line_addr", "state", "transparent", "si_hint",
                 "written_in_cs", "lru_stamp", "insert_stamp",
                 "fetcher_role", "used_by_r", "fetch_kind")

    def __init__(self, line_addr: int, state: str):
        self.line_addr = line_addr
        self.state = state
        self.transparent = False
        self.si_hint = False
        self.written_in_cs = False
        self.lru_stamp = 0
        self.insert_stamp = 0
        # --- classification bookkeeping (see repro.stats.classify) ---
        #: 'A' or 'R': which stream's request filled this line
        self.fetcher_role: Optional[str] = None
        #: True once the R-stream has referenced an A-fetched line
        self.used_by_r = False
        #: 'read' or 'excl': request type that filled the line
        self.fetch_kind: Optional[str] = None

    def __repr__(self) -> str:
        flags = "".join(flag for flag, on in (
            ("t", self.transparent), ("h", self.si_hint),
            ("c", self.written_in_cs)) if on)
        return f"<Line {self.line_addr:#x} {self.state}{(':' + flags) if flags else ''}>"


REPLACEMENT_POLICIES = ("lru", "fifo", "random")

# C-level key extractors: victim selection runs on every fill into a full
# set, which for the small L1s is nearly every fill.
_LRU_KEY = attrgetter("lru_stamp")
_FIFO_KEY = attrgetter("insert_stamp")


class Cache:
    """Set-associative tag array with configurable replacement.

    The cache stores no data — only tags, states, and flags.  Geometry is
    ``size / (assoc * line_size)`` sets.  ``on_evict`` (if given) is called
    with the victim :class:`CacheLine` whenever an insertion displaces one.
    Replacement is LRU by default; ``policy`` may also select FIFO or a
    deterministically-seeded random policy.
    """

    __slots__ = ("size", "assoc", "line_size", "name", "policy", "n_sets",
                 "on_evict", "_rng", "_sets", "_mask", "_stamp", "hits",
                 "misses", "evictions", "invalidations_received")

    def __init__(self, size: int, assoc: int, line_size: int,
                 name: str = "cache",
                 on_evict: Optional[Callable[[CacheLine], None]] = None,
                 policy: str = "lru", seed: int = 0x5eed):
        if size % (assoc * line_size):
            raise ValueError("cache size must be a multiple of assoc * line_size")
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(f"unknown replacement policy {policy!r}; "
                             f"choose from {REPLACEMENT_POLICIES}")
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.name = name
        self.policy = policy
        self.n_sets = size // (assoc * line_size)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.on_evict = on_evict
        if policy == "random":
            import random
            import zlib
            # zlib.crc32 is stable across processes (str hash is not),
            # keeping random replacement reproducible run-to-run.
            self._rng = random.Random(seed ^ zlib.crc32(name.encode()))
        else:
            self._rng = None
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.n_sets)]
        self._mask = self.n_sets - 1
        self._stamp = 0
        # statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations_received = 0

    def _set_of(self, line_addr: int) -> Dict[int, CacheLine]:
        return self._sets[line_addr & self._mask]

    # ------------------------------------------------------------------
    # Lookup (the set indexing is inlined here rather than going through
    # _set_of: these two run on every memory op in the simulator)
    # ------------------------------------------------------------------
    def probe(self, line_addr: int) -> Optional[CacheLine]:
        """Tag check without touching LRU or hit/miss counters."""
        return self._sets[line_addr & self._mask].get(line_addr)

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Tag check that updates LRU and hit/miss statistics."""
        line = self._sets[line_addr & self._mask].get(line_addr)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        self._stamp += 1
        line.lru_stamp = self._stamp
        return line

    # ------------------------------------------------------------------
    # Insertion / removal
    # ------------------------------------------------------------------
    def insert(self, line_addr: int, state: str) -> CacheLine:
        """Install (or re-install) a line; evicts the LRU victim if needed.

        Returns the installed :class:`CacheLine`.  The victim, if any, is
        handed to ``on_evict`` *before* the new line is installed.
        """
        if state not in _VALID_STATES:
            raise ValueError(f"cannot insert line in state {state!r}")
        cache_set = self._sets[line_addr & self._mask]
        line = cache_set.get(line_addr)
        if line is None:
            if len(cache_set) >= self.assoc:
                victim = self._choose_victim(cache_set)
                del cache_set[victim.line_addr]
                self.evictions += 1
                if self.on_evict is not None:
                    self.on_evict(victim)
                    line = CacheLine(line_addr, state)
                else:
                    # No eviction callback (the L1 tag arrays): nothing
                    # outside this call can hold the victim, so recycle the
                    # object instead of allocating a fresh line per fill.
                    line = victim
                    line.line_addr = line_addr
                    line.state = state
                    line.transparent = False
                    line.si_hint = False
                    line.written_in_cs = False
                    line.fetcher_role = None
                    line.used_by_r = False
                    line.fetch_kind = None
            else:
                line = CacheLine(line_addr, state)
            self._stamp += 1
            line.insert_stamp = self._stamp
            cache_set[line_addr] = line
        else:
            # Re-fill of a resident line (e.g. R-stream replacing a
            # transparent copy): reset per-fill flags.
            line.state = state
            line.transparent = False
            line.si_hint = False
            line.written_in_cs = False
            line.used_by_r = False
        self._stamp += 1
        line.lru_stamp = self._stamp
        return line

    def _choose_victim(self, cache_set: Dict[int, CacheLine]) -> CacheLine:
        if self.policy == "lru":
            return min(cache_set.values(), key=_LRU_KEY)
        if self.policy == "fifo":
            return min(cache_set.values(), key=_FIFO_KEY)
        return self._rng.choice(list(cache_set.values()))

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Remove a line (external invalidation).  Returns it, or None."""
        cache_set = self._set_of(line_addr)
        line = cache_set.pop(line_addr, None)
        if line is not None:
            self.invalidations_received += 1
        return line

    def downgrade(self, line_addr: int) -> Optional[CacheLine]:
        """Drop M -> S (intervention / self-invalidation writeback)."""
        line = self._set_of(line_addr).get(line_addr)
        if line is not None and line.state == MODIFIED:
            line.state = SHARED
            line.written_in_cs = False
        return line

    # ------------------------------------------------------------------
    # Introspection (tests, SI drain)
    # ------------------------------------------------------------------
    def resident_lines(self) -> List[CacheLine]:
        return [line for cache_set in self._sets for line in cache_set.values()]

    def lines_with_si_hint(self) -> List[CacheLine]:
        return [line for line in self.resident_lines() if line.si_hint]

    @property
    def occupancy(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
