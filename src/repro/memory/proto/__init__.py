"""Table-driven coherence protocols (``repro.memory.proto``).

The protocol a machine runs is data, not code: a
:class:`~repro.memory.proto.table.ProtocolTable` maps
``(stable directory state, event) -> (guard, actions, commits, reply,
next state)`` and the generic interpreter in
:mod:`repro.memory.proto.engine` executes it against live directory
entries with the paper's Table-1 timing.  A static lint
(:mod:`repro.memory.proto.lint`, also ``scripts/protocol_lint.py``)
proves every registered table exhaustive, reachable, action-legal, and
free of stall cycles before it is ever simulated.

Registered variants:

* ``dir-inv`` — the paper's invalidate-based fully-mapped directory
  protocol plus the Section-4 slipstream extensions (baseline;
  bit-identical to the former hand-written generators),
* ``dls`` — a directoryless shared-LLC protocol: owner pointer only,
  sync-point self-invalidation instead of sharer tracking.

Select with ``MachineConfig.protocol``.
"""

from __future__ import annotations

from typing import Dict

from repro.memory.proto import dir_inv, dls
from repro.memory.proto.engine import ProtocolEngine, ProtocolHole
from repro.memory.proto.table import (ACTIONS, COMMITS, DATAGRAM_EVENTS,
                                      DEMAND_EVENTS, GUARDS, ActionSpec,
                                      Capabilities, Event, Msg,
                                      ProtocolTable, Reply, Row)

#: every registered protocol table, by ``MachineConfig.protocol`` name
TABLES: Dict[str, ProtocolTable] = {
    dir_inv.TABLE.name: dir_inv.TABLE,
    dls.TABLE.name: dls.TABLE,
}


def protocol_names():
    """Names accepted by ``MachineConfig.protocol``, in registry order."""
    return tuple(TABLES)


def table_by_name(name: str) -> ProtocolTable:
    try:
        return TABLES[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; registered: "
            f"{', '.join(TABLES)}") from None


__all__ = [
    "ACTIONS", "COMMITS", "DATAGRAM_EVENTS", "DEMAND_EVENTS", "GUARDS",
    "ActionSpec", "Capabilities", "Event", "Msg", "ProtocolEngine",
    "ProtocolHole", "ProtocolTable", "Reply", "Row", "TABLES",
    "protocol_names", "table_by_name",
]
