"""``dir-inv``: the paper's invalidate-based fully-mapped directory
protocol, plus the Section-4 slipstream extensions, as a table.

This is a row-for-row re-expression of the former hand-written
generators in :mod:`repro.memory.protocol` (``_read_at_home`` /
``_excl_at_home`` / ``_transparent_at_home`` and the writeback paths).
The interpreter running this table is bit-identical to those generators
— the differential suite in ``tests/test_proto.py`` and the 27 golden
end-states enforce it.

Transients (the windows where the hand-written code simply *was*
suspended inside a generator) are named explicitly:

* ``BusyInt`` — intervention outstanding at the exclusive owner,
* ``BusyInv`` — invalidation fan-out outstanding at the sharers,
* ``BusyMem`` — home memory access outstanding.
"""

from __future__ import annotations

from repro.memory.cache import MODIFIED, SHARED as L_SHARED
from repro.memory.directory import EXCLUSIVE, SHARED, UNCACHED
from repro.memory.proto.table import (Capabilities, Event, ProtocolTable,
                                      Reply, Row)

_S = Reply(L_SHARED)
_S_OWNER = Reply(L_SHARED, data_from="owner")
_M_SI = Reply(MODIFIED, si=True)
_M_OWNER_SI = Reply(MODIFIED, data_from="owner", si=True)
_M_CONFIRM = Reply(MODIFIED, data_from="requester")
_S_TRANSPARENT = Reply(L_SHARED, transparent=True)
_S_UPGRADED = Reply(L_SHARED, upgraded=True)

TABLE = ProtocolTable(
    name="dir-inv",
    description=("invalidate-based fully-mapped directory with "
                 "slipstream transparent loads, future sharers, and "
                 "self-invalidation hints (the paper's protocol)"),
    states=(UNCACHED, SHARED, EXCLUSIVE),
    events=(Event.GETS, Event.GETX, Event.UPG, Event.GETT,
            Event.WB, Event.WB_DG, Event.REPL),
    transients=("BusyInt", "BusyInv", "BusyMem"),
    initial=UNCACHED,
    caps=Capabilities(),
    rows=(
        # ----------------------------------------------------- GETS ----
        # Migratory grant: hand the reader exclusive ownership in one
        # transaction (it is about to write anyway).
        Row(EXCLUSIVE, Event.GETS, guard="migratory_ready",
            actions=("count_migratory", "intervene_inval"),
            commits=("set_exclusive",), via=("BusyInt",),
            next_state=(EXCLUSIVE,),
            reply=Reply(MODIFIED, data_from="owner")),
        # Read intervention: pull the dirty copy, downgrade the owner.
        Row(EXCLUSIVE, Event.GETS, guard="owner_other",
            actions=("intervene_downgrade",), commits=("add_sharer",),
            via=("BusyInt",), next_state=(SHARED,), reply=_S_OWNER),
        # Raced with our own writeback; serve from memory.
        Row(EXCLUSIVE, Event.GETS,
            actions=("clear_entry", "mem_read"), commits=("add_sharer",),
            via=("BusyMem",), next_state=(SHARED,), reply=_S),
        Row(SHARED, Event.GETS, actions=("mem_read",),
            commits=("add_sharer",), via=("BusyMem",),
            next_state=(SHARED,), reply=_S),
        Row(UNCACHED, Event.GETS, actions=("mem_read",),
            commits=("add_sharer",), via=("BusyMem",),
            next_state=(SHARED,), reply=_S),
        # ----------------------------------------------------- GETX ----
        # Already owner (raced upgrade); just confirm.
        Row(EXCLUSIVE, Event.GETX, guard="owner_self",
            next_state=(EXCLUSIVE,), reply=_M_CONFIRM),
        Row(EXCLUSIVE, Event.GETX, actions=("intervene_inval",),
            commits=("set_exclusive",), via=("BusyInt",),
            next_state=(EXCLUSIVE,), reply=_M_OWNER_SI),
        Row(SHARED, Event.GETX, actions=("inval_sharers", "mem_read"),
            commits=("set_exclusive",), via=("BusyInv", "BusyMem"),
            next_state=(EXCLUSIVE,), reply=_M_SI),
        Row(UNCACHED, Event.GETX, actions=("mem_read",),
            commits=("set_exclusive",), via=("BusyMem",),
            next_state=(EXCLUSIVE,), reply=_M_SI),
        # ------------------------------------------------------ UPG ----
        Row(EXCLUSIVE, Event.UPG, guard="owner_self",
            next_state=(EXCLUSIVE,), reply=_M_CONFIRM),
        Row(EXCLUSIVE, Event.UPG, actions=("intervene_inval",),
            commits=("set_exclusive",), via=("BusyInt",),
            next_state=(EXCLUSIVE,), reply=_M_OWNER_SI),
        # The requester's own copy may have been evicted while the
        # fan-out was outstanding: memory is read only if it is no
        # longer a sharer (checked after the fan-out, at the action's
        # position in the sequence).
        Row(SHARED, Event.UPG,
            actions=("inval_sharers", "mem_read_unless_sharer"),
            commits=("set_exclusive",), via=("BusyInv", "BusyMem"),
            next_state=(EXCLUSIVE,), reply=_M_SI),
        Row(UNCACHED, Event.UPG, actions=("mem_read",),
            commits=("set_exclusive",), via=("BusyMem",),
            next_state=(EXCLUSIVE,), reply=_M_SI),
        # ----------------------------------------------------- GETT ----
        # Section 4.1: reply with the (possibly stale) memory copy, do
        # not disturb the owner, hint the owner to self-invalidate.
        Row(EXCLUSIVE, Event.GETT, guard="owner_other",
            actions=("add_future_sharer", "stale_reply_hint"),
            via=("BusyMem",), next_state=(EXCLUSIVE,),
            reply=_S_TRANSPARENT),
        # Degenerate: we are the owner -> upgrade to a normal load.
        Row(EXCLUSIVE, Event.GETT,
            actions=("add_future_sharer", "count_upgraded",
                     "clear_entry", "mem_read"),
            commits=("add_sharer",), via=("BusyMem",),
            next_state=(SHARED,), reply=_S_UPGRADED),
        Row(SHARED, Event.GETT,
            actions=("add_future_sharer", "count_upgraded", "mem_read"),
            commits=("add_sharer",), via=("BusyMem",),
            next_state=(SHARED,), reply=_S_UPGRADED),
        Row(UNCACHED, Event.GETT,
            actions=("add_future_sharer", "count_upgraded", "mem_read"),
            commits=("add_sharer",), via=("BusyMem",),
            next_state=(SHARED,), reply=_S_UPGRADED),
        # ------------------------------------------------------- WB ----
        Row(EXCLUSIVE, Event.WB, guard="owner_self", commits=("clear",),
            next_state=(UNCACHED,)),
        # Not the owner any more (intervention won the race): no-op.
        Row(EXCLUSIVE, Event.WB, commits=("noop",),
            next_state=(EXCLUSIVE,)),
        Row(SHARED, Event.WB, commits=("noop",), next_state=(SHARED,)),
        Row(UNCACHED, Event.WB, commits=("noop",), next_state=(UNCACHED,)),
        # ---------------------------------------------------- WB_DG ----
        Row(EXCLUSIVE, Event.WB_DG, guard="owner_self",
            commits=("downgrade_owner",), next_state=(SHARED,)),
        Row(EXCLUSIVE, Event.WB_DG, commits=("noop",),
            next_state=(EXCLUSIVE,)),
        Row(SHARED, Event.WB_DG, commits=("noop",), next_state=(SHARED,)),
        Row(UNCACHED, Event.WB_DG, commits=("noop",),
            next_state=(UNCACHED,)),
        # ----------------------------------------------------- REPL ----
        # Clean eviction: deregister the sharer (transparent copies were
        # never registered).  On an EXCLUSIVE entry this is a no-op —
        # the mid-flight downgrade intervention that explains that state
        # will re-register the evictor itself.
        Row(EXCLUSIVE, Event.REPL,
            commits=("remove_sharer_unless_transparent",),
            next_state=(EXCLUSIVE,)),
        Row(SHARED, Event.REPL,
            commits=("remove_sharer_unless_transparent",),
            next_state=(SHARED, UNCACHED)),
        Row(UNCACHED, Event.REPL,
            commits=("remove_sharer_unless_transparent",),
            next_state=(UNCACHED,)),
    ),
)
