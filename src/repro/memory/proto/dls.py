"""``dls``: a directoryless shared-LLC protocol (after Liu et al.).

The home keeps only an exclusive-owner pointer — no sharer vector, no
future-sharer lists, no invalidation fan-outs, no self-invalidation
hints, no replacement hints.  Reads are served from memory (or by a
downgrade intervention when a dirty copy exists, after which the home
*forgets* the line — it cannot track clean copies), and coherence for
shared data is recovered at synchronization points: each node bulk
self-invalidates its clean shared lines when it reaches a barrier, an
event wait, or a lock acquire (``Capabilities.sync_self_invalidate``,
applied by the L2 controller).  That is safe for the data-race-free
programs the workloads model: a consumer can only rely on a producer's
writes after synchronizing with it, at which point its stale shared
copies are gone.

Consequences encoded in the capabilities:

* stores always issue GETX (no UPG — the home cannot tell a sharer from
  a stranger, so an upgrade ack would be unsound),
* transparent loads degrade gracefully: a dirty line still gets a stale
  memory reply without disturbing the owner, but no hint is sent
  (``si_hints=False``), so slipstream's self-invalidation machinery
  stays idle under ``dls``,
* clean evictions are silent (nothing to deregister).
"""

from __future__ import annotations

from repro.memory.cache import MODIFIED, SHARED as L_SHARED
from repro.memory.directory import EXCLUSIVE, UNCACHED
from repro.memory.proto.table import (Capabilities, Event, ProtocolTable,
                                      Reply, Row)

_S = Reply(L_SHARED)
_S_OWNER = Reply(L_SHARED, data_from="owner")
_M = Reply(MODIFIED)
_M_OWNER = Reply(MODIFIED, data_from="owner")
_M_CONFIRM = Reply(MODIFIED, data_from="requester")
_S_TRANSPARENT = Reply(L_SHARED, transparent=True)
_S_UPGRADED = Reply(L_SHARED, upgraded=True)

TABLE = ProtocolTable(
    name="dls",
    description=("directoryless shared-LLC: owner pointer only, "
                 "sync-point self-invalidation instead of tracked "
                 "sharers (after Liu et al.)"),
    states=(UNCACHED, EXCLUSIVE),
    events=(Event.GETS, Event.GETX, Event.GETT, Event.WB),
    transients=("BusyInt", "BusyMem"),
    initial=UNCACHED,
    caps=Capabilities(
        sharer_vector=False,
        future_sharers=False,
        si_hints=False,
        upgrades=False,
        replacement_hints=False,
        migratory=False,
        sync_self_invalidate=True,
        entry_states=(UNCACHED, EXCLUSIVE),
    ),
    rows=(
        # ----------------------------------------------------- GETS ----
        # Dirty copy elsewhere: downgrade intervention pulls it home,
        # then the home forgets the line (clean copies are untracked).
        Row(EXCLUSIVE, Event.GETS, guard="owner_other",
            actions=("intervene_downgrade",), commits=("forget",),
            via=("BusyInt",), next_state=(UNCACHED,), reply=_S_OWNER),
        # Raced with our own writeback; serve from memory, untracked.
        Row(EXCLUSIVE, Event.GETS,
            actions=("clear_entry", "mem_read"), via=("BusyMem",),
            next_state=(UNCACHED,), reply=_S),
        Row(UNCACHED, Event.GETS, actions=("mem_read",),
            via=("BusyMem",), next_state=(UNCACHED,), reply=_S),
        # ----------------------------------------------------- GETX ----
        Row(EXCLUSIVE, Event.GETX, guard="owner_self",
            next_state=(EXCLUSIVE,), reply=_M_CONFIRM),
        Row(EXCLUSIVE, Event.GETX, actions=("intervene_inval",),
            commits=("set_exclusive",), via=("BusyInt",),
            next_state=(EXCLUSIVE,), reply=_M_OWNER),
        # Untracked clean copies may exist elsewhere; they go stale and
        # die at their holders' next synchronization point.
        Row(UNCACHED, Event.GETX, actions=("mem_read",),
            commits=("set_exclusive",), via=("BusyMem",),
            next_state=(EXCLUSIVE,), reply=_M),
        # ----------------------------------------------------- GETT ----
        # Stale memory reply, owner undisturbed; no hint machinery.
        Row(EXCLUSIVE, Event.GETT, guard="owner_other",
            actions=("stale_reply",), via=("BusyMem",),
            next_state=(EXCLUSIVE,), reply=_S_TRANSPARENT),
        Row(EXCLUSIVE, Event.GETT,
            actions=("count_upgraded", "clear_entry", "mem_read"),
            via=("BusyMem",), next_state=(UNCACHED,), reply=_S_UPGRADED),
        Row(UNCACHED, Event.GETT,
            actions=("count_upgraded", "mem_read"), via=("BusyMem",),
            next_state=(UNCACHED,), reply=_S_UPGRADED),
        # ------------------------------------------------------- WB ----
        Row(EXCLUSIVE, Event.WB, guard="owner_self", commits=("clear",),
            next_state=(UNCACHED,)),
        Row(EXCLUSIVE, Event.WB, commits=("noop",),
            next_state=(EXCLUSIVE,)),
        Row(UNCACHED, Event.WB, commits=("noop",), next_state=(UNCACHED,)),
    ),
)
