"""Static lint for protocol tables.

Runs offline (CI: ``scripts/protocol_lint.py``) over every registered
:class:`~repro.memory.proto.table.ProtocolTable` and proves, before a
table is ever simulated:

* **exhaustiveness** — every ``(state, event)`` pair the table declares
  is covered, and its last row is unguarded (a reachable hole would
  raise :class:`~repro.memory.proto.engine.ProtocolHole` at run time);
* **reachability** — no dead rows (a row behind an unguarded row can
  never be selected) and no stable state unreachable from the initial
  state over the declared ``next_state`` edges;
* **action legality** — actions only appear where their static
  requirements hold: owner interventions only in owner states, sharer
  fan-outs only where a sharer vector exists *and* the table's
  capabilities include one, no data reply without a data source
  (a memory read, an owner intervention, or a confirmed own copy), no
  self-invalidation replies from a table without hints;
* **timing discipline** — demand rows reply and may suspend through
  declared transients; datagram rows (writebacks, hints) never act,
  never reply, never suspend;
* **state accounting** — each row's declared ``next_state`` matches the
  state its actions and commits actually settle the entry in;
* **stall freedom** — a transaction suspended in a transient always
  reaches a stable state: ``next_state`` never names a transient and the
  ``state -> via -> next_state`` graph has no cycle through a transient.

Capability/event consistency is also enforced (e.g. a table without
``upgrades`` must not define UPG rows — its requesters never send one),
so the tables and the request-generation gates in the L2 controller
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.memory.directory import EXCLUSIVE, SHARED
from repro.memory.proto.table import (ACTIONS, COMMITS, DATAGRAM_EVENTS,
                                      DEMAND_EVENTS, GUARDS, Event,
                                      ProtocolTable, Row)

#: capability flag -> event that exists exactly when the flag is set
_CAP_EVENTS = (
    ("upgrades", Event.UPG),
    ("replacement_hints", Event.REPL),
    ("si_hints", Event.WB_DG),
)


@dataclass(frozen=True)
class LintError:
    """One finding: ``table`` / ``code`` / human-readable ``message``."""

    table: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.table}] {self.code}: {self.message}"


def _row_name(row: Row) -> str:
    guard = f" [{row.guard}]" if row.guard else ""
    return f"({row.state}, {row.event.value}){guard}"


class _Linter:
    def __init__(self, table: ProtocolTable):
        self.table = table
        self.errors: List[LintError] = []

    def err(self, code: str, message: str) -> None:
        self.errors.append(LintError(self.table.name, code, message))

    # -- structural ----------------------------------------------------
    def check_structure(self) -> None:
        t = self.table
        if t.initial not in t.states:
            self.err("bad-initial",
                     f"initial state {t.initial!r} not in states")
        overlap = set(t.states) & set(t.transients)
        if overlap:
            self.err("state-transient-overlap",
                     f"states double as transients: {sorted(overlap)}")
        for state in t.states:
            if state not in t.caps.entry_states:
                self.err("state-outside-caps",
                         f"state {state!r} not in caps.entry_states")
        for state in t.caps.entry_states:
            if state not in t.states:
                self.err("caps-state-unused",
                         f"caps.entry_states names {state!r} but the "
                         f"table has no such state")
        for cap, event in _CAP_EVENTS:
            has_cap = getattr(t.caps, cap)
            has_event = event in t.events
            if has_cap and not has_event:
                self.err("cap-event-missing",
                         f"caps.{cap} is set but event {event.value} is "
                         f"not in the table")
            if has_event and not has_cap:
                self.err("event-without-cap",
                         f"event {event.value} is in the table but "
                         f"caps.{cap} is unset — requesters never send it")
        for row in t.rows:
            name = _row_name(row)
            if row.state not in t.states:
                self.err("unknown-state",
                         f"{name}: source state not declared")
            if row.event not in t.events:
                self.err("unknown-event",
                         f"{name}: event not declared by the table")
            for action in row.actions:
                if action not in ACTIONS:
                    self.err("unknown-action", f"{name}: action {action!r}")
            for commit in row.commits:
                if commit not in COMMITS:
                    self.err("unknown-commit", f"{name}: commit {commit!r}")
            if row.guard is not None and row.guard not in GUARDS:
                self.err("unknown-guard", f"{name}: guard {row.guard!r}")
            for via in row.via:
                if via not in t.transients:
                    self.err("unknown-transient",
                             f"{name}: via {via!r} not declared")
            for nxt in row.next_state:
                if nxt in t.transients:
                    self.err("stall-state",
                             f"{name}: next_state {nxt!r} is a transient "
                             f"— the entry would never restabilize")
                elif nxt not in t.states:
                    self.err("unknown-next-state",
                             f"{name}: next_state {nxt!r} not declared")

    # -- exhaustiveness + dead rows ------------------------------------
    def check_coverage(self) -> None:
        t = self.table
        for state in t.states:
            for event in t.events:
                rows = t.rows_for(state, event)
                if not rows:
                    self.err("hole",
                             f"no row for ({state}, {event.value})")
                    continue
                if rows[-1].guard is not None:
                    self.err("guarded-hole",
                             f"({state}, {event.value}): last row is "
                             f"guarded [{rows[-1].guard}] — a request "
                             f"rejected by every guard has nowhere to go")
                default_seen = False
                for row in rows:
                    if default_seen:
                        self.err("dead-row",
                                 f"{_row_name(row)}: unreachable — an "
                                 f"earlier unguarded row always matches")
                    if row.guard is None:
                        default_seen = True

    # -- per-row legality ----------------------------------------------
    def check_rows(self) -> None:
        t = self.table
        caps = t.caps
        for row in t.rows:
            name = _row_name(row)
            demand = row.event in DEMAND_EVENTS
            if row.guard is not None:
                want = GUARDS.get(row.guard)
                if want is not None and row.state != want:
                    self.err("guard-misplaced",
                             f"{name}: guard {row.guard!r} is only "
                             f"meaningful in state {want!r}")
            timed = False
            sources: Set[str] = set()
            for action in row.actions:
                spec = ACTIONS.get(action)
                if spec is None:
                    continue  # reported by check_structure
                timed = timed or spec.timed
                if spec.data_source:
                    sources.add(spec.data_source)
                if spec.needs_owner and row.state != EXCLUSIVE:
                    self.err("action-needs-owner",
                             f"{name}: {action} requires an exclusive "
                             f"owner (state E)")
                if spec.needs_sharers and row.state != SHARED:
                    self.err("action-needs-sharers",
                             f"{name}: {action} requires a sharer vector "
                             f"(state S)")
                if spec.requires_cap and not getattr(caps,
                                                     spec.requires_cap):
                    self.err("action-needs-cap",
                             f"{name}: {action} requires caps."
                             f"{spec.requires_cap}")
            if demand:
                if row.reply is None:
                    self.err("demand-no-reply",
                             f"{name}: demand event with no reply — the "
                             f"requester would wait forever")
                else:
                    self._check_reply(row, sources)
                if timed and not row.via:
                    self.err("undeclared-transient",
                             f"{name}: suspends (timed actions) without "
                             f"declaring a transient")
                if row.via and not timed:
                    self.err("phantom-transient",
                             f"{name}: declares transients but never "
                             f"suspends")
            else:
                if row.actions:
                    self.err("datagram-acts",
                             f"{name}: datagram events carry commits "
                             f"only; actions would suspend a one-way "
                             f"message")
                if row.reply is not None:
                    self.err("datagram-reply",
                             f"{name}: datagram events have no requester "
                             f"waiting for a reply")
                if row.via:
                    self.err("datagram-transient",
                             f"{name}: datagram events never suspend")
            self._check_next_state(row)

    def _check_reply(self, row: Row, sources: Set[str]) -> None:
        name = _row_name(row)
        reply = row.reply
        if reply.si and not self.table.caps.si_hints:
            self.err("reply-si-without-cap",
                     f"{name}: si reply from a table without si_hints")
        if reply.data_from == "requester":
            if row.guard != "owner_self":
                self.err("confirm-without-ownership",
                         f"{name}: reply reuses the requester's copy but "
                         f"nothing proves the requester owns the line")
        elif reply.data_from not in sources:
            self.err("data-without-source",
                     f"{name}: reply sources data from "
                     f"{reply.data_from!r} but no action fetches it "
                     f"(no memory read / owner intervention)")

    def _check_next_state(self, row: Row) -> None:
        name = _row_name(row)
        if not row.next_state:
            self.err("no-next-state",
                     f"{name}: declare the stable state(s) the entry "
                     f"settles in")
            return
        derived: Optional[str] = row.state
        varies = False
        for action in row.actions:
            spec = ACTIONS.get(action)
            if spec is not None and spec.entry_effect is not None:
                derived = spec.entry_effect
        for commit in row.commits:
            effect = COMMITS.get(commit)
            if effect is None or effect == "keep":
                continue
            if effect == "varies":
                varies = True
            else:
                derived = effect
        if varies:
            return  # data-dependent; declared set already checked above
        if row.next_state != (derived,):
            self.err("next-state-mismatch",
                     f"{name}: declares next_state {row.next_state} but "
                     f"the actions/commits settle the entry in "
                     f"{derived!r}")

    # -- reachability + stall cycles -----------------------------------
    def check_reachability(self) -> None:
        t = self.table
        edges: Dict[str, Set[str]] = {s: set() for s in t.states}
        for row in t.rows:
            if row.state in edges:
                edges[row.state].update(
                    n for n in row.next_state if n in edges)
        seen = {t.initial} if t.initial in edges else set()
        frontier = list(seen)
        while frontier:
            nxt = edges.get(frontier.pop(), ())
            for s in nxt:
                if s not in seen:
                    seen.add(s)
                    frontier.append(s)
        for state in t.states:
            if state not in seen:
                self.err("unreachable-state",
                         f"state {state!r} unreachable from "
                         f"{t.initial!r} over declared transitions")
        used = {v for row in t.rows for v in row.via}
        for transient in t.transients:
            if transient not in used:
                self.err("unused-transient",
                         f"transient {transient!r} declared but no row "
                         f"passes through it")

    def check_stall_cycles(self) -> None:
        # state -> via[0] -> ... -> via[-1] -> next_state edges; a cycle
        # through a transient means a transaction that can suspend again
        # before restabilizing — a protocol-level livelock.
        t = self.table
        graph: Dict[str, Set[str]] = {}
        for row in t.rows:
            chain = (row.state,) + row.via
            for src, dst in zip(chain, chain[1:]):
                graph.setdefault(src, set()).add(dst)
            for nxt in row.next_state:
                graph.setdefault(chain[-1], set()).add(nxt)
        transients = set(t.transients)
        colors: Dict[str, int] = {}

        def visit(node: str, path: List[str]) -> None:
            colors[node] = 1
            for nxt in sorted(graph.get(node, ())):
                if nxt not in transients:
                    continue  # stable states terminate the transaction
                if colors.get(nxt) == 1:
                    cycle = path + [node, nxt]
                    self.err("stall-cycle",
                             "transient cycle: " + " -> ".join(cycle))
                elif colors.get(nxt, 0) == 0:
                    visit(nxt, path + [node])
            colors[node] = 2

        for start in sorted(graph):
            if colors.get(start, 0) == 0:
                visit(start, [])

    def run(self) -> List[LintError]:
        self.check_structure()
        self.check_coverage()
        self.check_rows()
        self.check_reachability()
        self.check_stall_cycles()
        return self.errors


def lint_table(table: ProtocolTable) -> List[LintError]:
    """Lint one table; returns all findings (empty list = clean)."""
    return _Linter(table).run()


def lint_all() -> Dict[str, List[LintError]]:
    """Lint every registered table; maps protocol name -> findings."""
    from repro.memory.proto import TABLES
    return {name: lint_table(table) for name, table in TABLES.items()}
