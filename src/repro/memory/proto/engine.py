"""Generic table interpreter for coherence protocols.

A :class:`ProtocolEngine` binds one :class:`~repro.memory.proto.table.
ProtocolTable` to one :class:`~repro.memory.protocol.CoherenceFabric`
and dispatches directory-side events through it.  The timed actions
reuse the fabric's transaction machinery (``_intervene``,
``_invalidate_sharers``, ``_send_si_hint``, the bare-int ``mem_time``
yields), so a table row charges exactly the Table-1 resources the
hand-written generators charged — the dispatch layer adds bookkeeping,
never cycles.

Two entry points:

* :meth:`dispatch` — demand events (GETS/GETX/UPG/GETT), run as a
  generator while the caller holds the line guard; returns the
  :class:`~repro.memory.protocol.FetchResult` described by the selected
  row's reply.
* :meth:`apply` — datagram events (WB/WB_DG/REPL): synchronous metadata
  commits, no timing, no reply.

Transient states are *declared* per row (``via``) for the lint and the
docs; at run time the stable ``entry.state`` is never overwritten while
a transaction is suspended — concurrent writebacks race-check against
the stable state plus the owner pointer, exactly as the pre-table
protocol (and a real directory's busy bit + saved state) did.

A reachable ``(state, event)`` pair with no row raises
:class:`ProtocolHole` — the runtime backstop behind the static
exhaustiveness lint.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.memory.directory import EXCLUSIVE, SHARED
from repro.memory.proto.table import Event, ProtocolTable, Row


class ProtocolHole(RuntimeError):
    """An event arrived at a (state, event) pair the table does not cover."""


class _Ctx:
    """Per-dispatch scratch handed to guards, actions, and commits."""

    __slots__ = ("node", "home", "line", "entry", "role", "transparent")

    def __init__(self, node, home, line, entry, role):
        self.node = node
        self.home = home
        self.line = line
        self.entry = entry
        self.role = role
        self.transparent = False


class _CompiledRow:
    __slots__ = ("guard", "actions", "commits", "reply")

    def __init__(self, guard, actions, commits, reply):
        self.guard = guard
        self.actions = actions
        self.commits = commits
        self.reply = reply


class ProtocolEngine:
    """Walks a protocol table's rows against live directory entries."""

    def __init__(self, table: ProtocolTable, fabric):
        # Deferred to break the import cycle (protocol.py imports this
        # module at top level); resolved once per engine, not per fetch.
        from repro.memory.protocol import FetchResult
        self._fetch_result = FetchResult
        self.table = table
        self.fabric = fabric
        self.caps = table.caps
        obs = fabric.obs
        #: per-transition metric counters (created lazily so only
        #: exercised transitions appear in the flat export)
        self._registry = (obs.registry
                          if obs is not None and obs.metrics_on else None)
        self._txn_counters: Dict[Tuple[str, Event], object] = {}
        self._rows: Dict[Tuple[str, Event], List[_CompiledRow]] = {}
        for row in table.rows:
            compiled = _CompiledRow(
                guard=(None if row.guard is None
                       else getattr(self, "_guard_" + row.guard)),
                actions=tuple(getattr(self, "_act_" + name)
                              for name in row.actions),
                commits=tuple(getattr(self, "_commit_" + name)
                              for name in row.commits),
                reply=row.reply)
            self._rows.setdefault((row.state, row.event), []).append(compiled)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _select(self, ctx: _Ctx, event: Event) -> _CompiledRow:
        rows = self._rows.get((ctx.entry.state, event))
        if rows is None:
            raise ProtocolHole(
                f"protocol {self.table.name!r} has no row for "
                f"({ctx.entry.state!r}, {event.value}) at line "
                f"{ctx.line:#x}")
        if self._registry is not None:
            self._count(ctx.entry.state, event)
        for row in rows:
            guard = row.guard
            if guard is None or guard(ctx):
                return row
        raise ProtocolHole(
            f"protocol {self.table.name!r}: every guard rejected "
            f"({ctx.entry.state!r}, {event.value}) at line {ctx.line:#x}")

    def dispatch(self, node: int, home: int, line: int, entry,
                 event: Event, role: str) -> Generator:
        """Run one demand transaction; returns a ``FetchResult``.

        The caller (``CoherenceFabric.fetch``) holds the line guard and
        has already charged the request's transport; this covers the
        directory-side actions and metadata, mirroring what the former
        ``*_at_home`` generators did.
        """
        ctx = _Ctx(node, home, line, entry, role)
        row = self._select(ctx, event)
        for act in row.actions:
            suspended = act(ctx)
            if suspended is not None:
                yield from suspended
        for commit in row.commits:
            commit(ctx)
        reply = row.reply
        fabric = self.fabric
        si_hint = False
        if reply.si and fabric.si_enabled:
            si_hint = bool(
                fabric.directory.future_sharers_other_than(line, node))
            if si_hint and fabric.checker is not None:
                fabric.checker.on_si_hint(line, node)
        return self._fetch_result(reply.state, transparent=reply.transparent,
                                  si_hint=si_hint, upgraded=reply.upgraded)

    def apply(self, node: int, line: int, entry, event: Event,
              transparent: bool = False) -> None:
        """Apply one datagram event (WB/WB_DG/REPL): commits only."""
        ctx = _Ctx(node, None, line, entry, "R")
        ctx.transparent = transparent
        row = self._select(ctx, event)
        for commit in row.commits:
            commit(ctx)

    def _count(self, state: str, event: Event) -> None:
        key = (state, event)
        counter = self._txn_counters.get(key)
        if counter is None:
            counter = self._registry.counter(
                "proto.transition", proto=self.table.name, state=state,
                event=event.value)
            self._txn_counters[key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------
    def _guard_owner_self(self, ctx: _Ctx) -> bool:
        return ctx.entry.owner == ctx.node

    def _guard_owner_other(self, ctx: _Ctx) -> bool:
        return ctx.entry.owner != ctx.node

    def _guard_migratory_ready(self, ctx: _Ctx) -> bool:
        fabric = self.fabric
        return (fabric.migratory_enabled
                and ctx.entry.owner != ctx.node
                and ctx.entry.migrations >= fabric.migratory_threshold)

    # ------------------------------------------------------------------
    # Timed actions (generators yield; plain actions return None)
    # ------------------------------------------------------------------
    def _act_mem_read(self, ctx: _Ctx) -> Generator:
        yield self.fabric.config.mem_time

    def _act_mem_read_unless_sharer(self, ctx: _Ctx) -> Optional[Generator]:
        if ctx.node not in ctx.entry.sharers:
            return self._act_mem_read(ctx)
        return None

    def _act_intervene_inval(self, ctx: _Ctx) -> Generator:
        return self.fabric._intervene(ctx.home, ctx.line, ctx.entry,
                                      invalidate=True)

    def _act_intervene_downgrade(self, ctx: _Ctx) -> Generator:
        return self.fabric._intervene(ctx.home, ctx.line, ctx.entry,
                                      invalidate=False)

    def _act_inval_sharers(self, ctx: _Ctx) -> Optional[Generator]:
        others = sorted(ctx.entry.sharers - {ctx.node})
        if others:
            return self.fabric._invalidate_sharers(ctx.home, ctx.line,
                                                   others)
        return None

    def _act_stale_reply_hint(self, ctx: _Ctx) -> Generator:
        """Section 4.1 transparent service of an exclusive line: stale
        memory reply + a self-invalidation hint to a still-standing
        owner (the owner may have written back while memory was read)."""
        fabric = self.fabric
        entry = ctx.entry
        owner = entry.owner
        fabric.transparent_replies += 1
        yield fabric.config.mem_time
        if (fabric.si_enabled and entry.state == EXCLUSIVE
                and entry.owner == owner):
            fabric._send_si_hint(ctx.home, owner, ctx.line)

    def _act_stale_reply(self, ctx: _Ctx) -> Generator:
        """Transparent service without hint machinery (dls)."""
        self.fabric.transparent_replies += 1
        yield self.fabric.config.mem_time

    def _act_clear_entry(self, ctx: _Ctx) -> None:
        ctx.entry.clear()

    def _act_count_migratory(self, ctx: _Ctx) -> None:
        fabric = self.fabric
        fabric.migratory_grants += 1
        p = fabric._p_migratory
        if p is not None and p.live:
            p(f"node{ctx.node}", f"line={ctx.line:#x}")

    def _act_add_future_sharer(self, ctx: _Ctx) -> None:
        self.fabric.directory.add_future_sharer(ctx.line, ctx.node)

    def _act_count_upgraded(self, ctx: _Ctx) -> None:
        self.fabric.upgraded_transparent += 1

    # ------------------------------------------------------------------
    # Commits (metadata micro-ops; never suspend)
    # ------------------------------------------------------------------
    def _commit_add_sharer(self, ctx: _Ctx) -> None:
        ctx.entry.add_sharer(ctx.node)

    def _commit_set_exclusive(self, ctx: _Ctx) -> None:
        ctx.entry.set_exclusive(ctx.node)

    def _commit_clear(self, ctx: _Ctx) -> None:
        ctx.entry.clear()

    def _commit_downgrade_owner(self, ctx: _Ctx) -> None:
        ctx.entry.downgrade_owner_to_sharer()

    def _commit_forget(self, ctx: _Ctx) -> None:
        # A downgrade intervention left the previous owner as the sole
        # tracked sharer; a directoryless home keeps no sharer state, so
        # forget the (now clean) line entirely.  If a concurrent
        # writeback already cleared the entry there is nothing to drop.
        if ctx.entry.state == SHARED:
            ctx.entry.clear()

    def _commit_remove_sharer_unless_transparent(self, ctx: _Ctx) -> None:
        if not ctx.transparent:
            ctx.entry.remove_sharer(ctx.node)

    def _commit_noop(self, ctx: _Ctx) -> None:
        return None
