"""Declarative coherence-protocol tables.

A protocol is a :class:`ProtocolTable`: a set of :class:`Row`s mapping
``(stable directory state, Event) -> (guard, actions, commits, reply,
next state)``, over explicit :class:`Msg`/:class:`Event` enums.  The
generic interpreter (:mod:`repro.memory.proto.engine`) walks the rows at
run time, charging the same Table-1 timing resources the hand-written
generators charged; the static lint (:mod:`repro.memory.proto.lint`)
walks them offline and proves exhaustiveness, reachability, action
legality, and freedom from stall cycles.

The split within a row mirrors how a real directory controller behaves
while its busy bit is held:

* **guard** — a predicate over the entry and requester that selects the
  row (e.g. ``owner_other``); the last row for a ``(state, event)`` pair
  must be unguarded (the lint enforces it).
* **actions** — the timed part: memory reads, interventions,
  invalidation fan-outs.  These may suspend the transaction (the
  interpreter ``yield from``s them), which is exactly the *transient
  state* window of the protocol; each row names the transients it passes
  through (``via``) so the lint can reason about them even though the
  stable ``entry.state`` field is never overwritten mid-transaction
  (concurrent writebacks race-check against the stable state, as real
  protocols do against a busy bit + saved state).
* **commits** — metadata micro-ops applied atomically after the timed
  actions (``add_sharer``, ``set_exclusive``, ...).  Datagram events
  (writebacks, replacement hints) have *only* commits: they never
  suspend and never reply.
* **reply** — what the requester is told to install, and where the data
  payload comes from (memory, the previous owner, or the requester's own
  copy); the lint rejects data replies without a data source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.memory.directory import EXCLUSIVE, SHARED, UNCACHED


class Event(str, Enum):
    """Coherence events a directory entry can receive."""

    GETS = "GETS"        # read miss (shared copy)
    GETX = "GETX"        # read-exclusive miss (ownership + data)
    UPG = "UPG"          # ownership upgrade (requester already shares)
    GETT = "GETT"        # transparent load (Section 4.1, A-stream only)
    WB = "WB"            # dirty writeback (eviction / SI invalidation)
    WB_DG = "WB_DG"      # writeback + downgrade (SI producer-consumer)
    REPL = "REPL"        # clean-replacement hint


#: events that are request/reply transactions (guard held, timed, reply)
DEMAND_EVENTS = frozenset((Event.GETS, Event.GETX, Event.UPG, Event.GETT))
#: events that are one-way metadata datagrams (no timing, no reply)
DATAGRAM_EVENTS = frozenset((Event.WB, Event.WB_DG, Event.REPL))


class Msg(str, Enum):
    """Message classes a protocol exchanges (documentation + lint)."""

    REQ = "REQ"          # request, requester -> home
    DATA = "DATA"        # data reply
    ACK = "ACK"          # control reply / acknowledgement
    INV = "INV"          # invalidation, home -> sharer
    INT = "INT"          # intervention, home -> owner
    WB_DATA = "WB_DATA"  # writeback data, owner -> home
    HINT = "HINT"        # self-invalidation hint, home -> owner
    CTRL = "CTRL"        # replacement hint / misc control


@dataclass(frozen=True)
class ActionSpec:
    """Static metadata for one timed action (the lint's view of it)."""

    name: str
    #: where this action sources a data payload ('mem', 'owner', or None)
    data_source: Optional[str] = None
    #: may suspend the transaction (charges Table-1 timing)
    timed: bool = False
    #: only legal when the source state has an exclusive owner
    needs_owner: bool = False
    #: only legal when the source state tracks a sharer vector
    needs_sharers: bool = False
    #: resulting stable entry state, when the action itself settles it
    #: (None = leaves the entry state alone; commits decide)
    entry_effect: Optional[str] = None
    #: capability the table must declare for this action to be legal
    requires_cap: Optional[str] = None
    #: message classes the action puts on the wire
    messages: Tuple[Msg, ...] = ()


#: every action the interpreter implements, by name
ACTIONS: Dict[str, ActionSpec] = {spec.name: spec for spec in (
    ActionSpec("mem_read", data_source="mem", timed=True),
    ActionSpec("mem_read_unless_sharer", data_source="mem", timed=True),
    ActionSpec("intervene_inval", data_source="owner", timed=True,
               needs_owner=True, entry_effect=UNCACHED,
               messages=(Msg.INT, Msg.WB_DATA)),
    ActionSpec("intervene_downgrade", data_source="owner", timed=True,
               needs_owner=True, entry_effect=SHARED,
               messages=(Msg.INT, Msg.WB_DATA)),
    ActionSpec("inval_sharers", timed=True, needs_sharers=True,
               requires_cap="sharer_vector", messages=(Msg.INV, Msg.ACK)),
    ActionSpec("clear_entry", entry_effect=UNCACHED),
    ActionSpec("count_migratory", requires_cap="migratory"),
    ActionSpec("add_future_sharer", requires_cap="future_sharers"),
    ActionSpec("stale_reply_hint", data_source="mem", timed=True,
               needs_owner=True, requires_cap="si_hints",
               messages=(Msg.HINT,)),
    ActionSpec("stale_reply", data_source="mem", timed=True),
    ActionSpec("count_upgraded",),
)}


#: commit micro-ops and the stable state each one settles the entry in
#: ("keep" = leaves the state alone; "varies" = data-dependent, so the
#: row must declare every possible next state)
COMMITS: Dict[str, str] = {
    "add_sharer": SHARED,
    "set_exclusive": EXCLUSIVE,
    "clear": UNCACHED,
    "downgrade_owner": SHARED,
    "forget": UNCACHED,
    "remove_sharer_unless_transparent": "varies",
    "noop": "keep",
}

#: guard predicates and the state they are meaningful in (None = any)
GUARDS: Dict[str, Optional[str]] = {
    "owner_self": EXCLUSIVE,
    "owner_other": EXCLUSIVE,
    "migratory_ready": EXCLUSIVE,
}


@dataclass(frozen=True)
class Reply:
    """What the home tells the requester at the end of a demand event."""

    state: str                    # cache-line install state ('S' or 'M')
    msg: Msg = Msg.DATA
    #: data payload source: 'mem', 'owner', or 'requester' (no payload —
    #: the requester's own copy is still valid, e.g. a confirmed upgrade)
    data_from: str = "mem"
    transparent: bool = False
    upgraded: bool = False
    #: compute a piggybacked self-invalidation hint (Section 4.2)
    si: bool = False


@dataclass(frozen=True)
class Row:
    """One transition: ``(state, event) [guard] -> actions; commits``."""

    state: str
    event: Event
    actions: Tuple[str, ...] = ()
    commits: Tuple[str, ...] = ()
    guard: Optional[str] = None
    reply: Optional[Reply] = None
    #: transient states the transaction passes through while suspended
    via: Tuple[str, ...] = ()
    #: stable state(s) the entry can settle in (checked against the
    #: actions/commits by the lint; multiple when data-dependent)
    next_state: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Capabilities:
    """What a protocol tracks/supports — gates checker predicates, the
    L2 controller's request generation, and the lint's legality rules."""

    #: home tracks a full sharer bit-vector (enables invalidation fan-out
    #: and the sharer-registration agreement checks)
    sharer_vector: bool = True
    #: home keeps Section-4.2 future-sharer lists
    future_sharers: bool = True
    #: home generates self-invalidation hints
    si_hints: bool = True
    #: stores to resident shared copies issue UPG instead of GETX
    upgrades: bool = True
    #: clean evictions send replacement hints to the home
    replacement_hints: bool = True
    #: directory may grant exclusive on a read of migratory data
    migratory: bool = True
    #: nodes bulk self-invalidate shared copies at synchronization points
    #: (directoryless protocols: no home to invalidate through)
    sync_self_invalidate: bool = False
    #: stable directory-entry states this protocol uses
    entry_states: Tuple[str, ...] = (UNCACHED, SHARED, EXCLUSIVE)


@dataclass(frozen=True)
class ProtocolTable:
    """A complete protocol: states, events, transients, and rows."""

    name: str
    description: str
    states: Tuple[str, ...]
    events: Tuple[Event, ...]
    transients: Tuple[str, ...]
    initial: str
    rows: Tuple[Row, ...]
    caps: Capabilities = field(default_factory=Capabilities)

    def rows_for(self, state: str, event: Event) -> Tuple[Row, ...]:
        return tuple(row for row in self.rows
                     if row.state == state and row.event == event)
