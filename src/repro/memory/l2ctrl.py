"""Node-side shared-L2 controller.

One :class:`L2Controller` per CMP node.  It owns the node's unified L2 and
the two processors' L1 tag arrays, and implements:

* the load/store request paths (L1 hit, L2 hit, or a coherence fetch through
  :class:`~repro.memory.protocol.CoherenceFabric`),
* **MSHR merging**: the shared L2 merges the two on-chip processors'
  requests for the same line ("The shared L2 cache ... merges their requests
  when appropriate"), which is also where the paper's *A-Late* category
  comes from,
* transparent-line visibility (a transparent copy is a miss for the
  R-stream),
* A-stream **exclusive prefetch** (skipped stores converted to non-binding
  ownership requests),
* eviction/writeback and replacement-hint generation,
* the **self-invalidation drain** that processes hinted lines at one line
  per ``si_drain_interval`` cycles when the R-stream reaches a
  synchronization point.

All request-classification bookkeeping (Figure 7 of the paper) is driven
from here, via an injected :class:`~repro.stats.classify.RequestClassifier`.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set

from repro.config import MachineConfig
from repro.memory.cache import Cache, CacheLine, MODIFIED, SHARED
from repro.memory.protocol import (CoherenceFabric, EXCL, READ, TRANSPARENT,
                                   UPGRADE, FetchResult)
from repro.sim import Engine, Process, Resource, SimEvent, Timeout


class _Pending:
    """One outstanding miss (MSHR entry) for a line."""

    __slots__ = ("event", "kind", "role", "late_classified")

    def __init__(self, event: SimEvent, kind: str, role: str):
        self.event = event
        self.kind = kind          # read / excl / upgrade / transparent
        self.role = role          # 'A' or 'R'
        self.late_classified = False

    @property
    def grants_ownership(self) -> bool:
        return self.kind in (EXCL, UPGRADE)

    @property
    def stat_kind(self) -> str:
        """Classifier bucket ('read'/'excl') for this request kind."""
        return "excl" if self.kind in (EXCL, UPGRADE) else "read"


class L2Controller:
    """Shared-L2 controller for one CMP node."""

    def __init__(self, engine: Engine, config: MachineConfig, node_id: int,
                 fabric: CoherenceFabric, classifier=None):
        self.engine = engine
        self.config = config
        self.node_id = node_id
        self.fabric = fabric
        #: capabilities of the protocol the fabric runs: gate upgrade
        #: generation, replacement hints, and sync-point self-invalidation
        self.caps = fabric.caps
        self.sync_si = self.caps.sync_self_invalidate
        self.classifier = classifier
        self.l2 = Cache(config.l2_size, config.l2_assoc, config.line_size,
                        name=f"l2[{node_id}]", on_evict=self._on_l2_evict,
                        policy=config.replacement_policy,
                        seed=config.seed + node_id)
        self.l1s: List[Cache] = [
            Cache(config.l1_size, config.l1_assoc, config.line_size,
                  name=f"l1[{node_id}.{p}]",
                  policy=config.replacement_policy,
                  seed=config.seed + 101 * node_id + p)
            for p in range(config.procs_per_cmp)]
        #: the shared L2 is a single-ported array: concurrent accesses from
        #: the two on-chip processors (and fills) queue here — the node-level
        #: contention that penalizes double mode ("A single task means no
        #: contention for L2 cache and network resources on the CMP node")
        self.l2_port = Resource(engine, f"l2port[{node_id}]")
        self._pending: Dict[int, _Pending] = {}
        self._si_pending: Set[int] = set()
        self._si_drainer: Optional[Process] = None
        self.tracer = fabric.tracer
        #: observability spine probes + push-metric handles (all None when
        #: the machine was built without a spine / with metrics off)
        obs = engine.obs
        self.obs = obs
        self._p_si_inval = None if obs is None else obs.probe("si-inval")
        self._p_si_downgrade = (None if obs is None
                                else obs.probe("si-downgrade"))
        self._p_fill = None if obs is None else obs.probe("l2.fill")
        self._p_drain = None if obs is None else obs.probe("si.drain")
        if obs is not None and obs.metrics_on:
            self._metrics = obs.registry
            self._fetch_hist = obs.registry.histogram(
                "l2.fetch_cycles", node=node_id)
        else:
            self._metrics = None
            self._fetch_hist = None
        #: invariant-checker suite (None unless the machine was built with
        #: checking enabled; see repro.check)
        self.checker = fabric.checker
        if self.checker is not None:
            self.checker.register_controller(node_id, self)
        fabric.register_node(node_id, self)
        #: per-node A-fetch outcome counters (fed to the adaptive A-R
        #: controller; maintained regardless of the global classifier)
        self.a_outcomes = {"timely": 0, "late": 0, "only": 0}
        # statistics
        self.si_invalidated = 0
        self.si_downgraded = 0
        self.si_stale_hints = 0
        self.prefetches_issued = 0
        self.prefetches_dropped = 0
        #: fault-injection resilience counters: coherence-request NACK
        #: retries handled by this node, and watchdog escalations to
        #: guaranteed delivery (see CoherenceFabric._request_hop)
        self.net_retries = 0
        self.watchdog_trips = 0
        #: lines flash-invalidated at synchronization points (protocols
        #: with caps.sync_self_invalidate, e.g. "dls")
        self.sync_invalidations = 0

    # ------------------------------------------------------------------
    # Classification helpers (exactly-once per fill, via line flags)
    # ------------------------------------------------------------------
    def _note_stream_touch(self, line_addr: int, role: str) -> None:
        if self.classifier is not None and role == "A":
            self.classifier.on_a_touch(self.node_id, line_addr)

    def _note_r_use(self, line: CacheLine) -> None:
        """R-stream referenced a resident line; resolves an A fetch as Timely."""
        if line.fetcher_role == "A" and not line.used_by_r:
            line.used_by_r = True
            if not line.transparent:
                self.a_outcomes["timely"] += 1
                if self.classifier is not None:
                    self.classifier.on_a_fetch_timely(line.fetch_kind)

    def _note_line_lost(self, line: CacheLine) -> None:
        """Line leaves the cache (eviction or invalidation): an A fetch the
        R-stream never referenced becomes A-Only."""
        if line.fetcher_role == "A" and not line.used_by_r:
            self.a_outcomes["only"] += 1
            if self.classifier is not None:
                self.classifier.on_a_fetch_only(line.fetch_kind)
            line.used_by_r = True  # guard against double counting

    # ------------------------------------------------------------------
    # Fast paths used by the processor model (no simulated latency beyond
    # the 1-cycle op slot)
    # ------------------------------------------------------------------
    def on_l1_hit(self, line_addr: int, role: str) -> None:
        """Bookkeeping for a load satisfied by the processor's own L1."""
        self._note_stream_touch(line_addr, role)
        if role == "R":
            l2_line = self.l2.probe(line_addr)
            if l2_line is not None:
                self._note_r_use(l2_line)

    def try_fast_store(self, proc_idx: int, role: str, line_addr: int,
                       in_critical_section: bool) -> bool:
        """Store hit on an owned (M) line: completes without stalling."""
        if self.checker is not None:
            self.checker.on_store(self.node_id, role)
        line = self.l2.probe(line_addr)
        if line is None or line.state != MODIFIED:
            return False
        self._note_stream_touch(line_addr, role)
        self.l2.hits += 1
        self.l2._stamp += 1
        line.lru_stamp = self.l2._stamp
        if role == "R":
            self._note_r_use(line)
        self._complete_store(proc_idx, line, in_critical_section)
        return True

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------
    def load(self, proc_idx: int, role: str, line_addr: int,
             transparent: bool = False) -> Generator:
        """Blocking load of one line by processor ``proc_idx``.

        ``role`` is the requesting stream ('A' or 'R'); ``transparent`` asks
        for a transparent load (A-stream only; see Section 4.1).  Generator:
        ``yield from`` it inside a processor process.
        """
        self._note_stream_touch(line_addr, role)
        l1 = self.l1s[proc_idx]
        while True:
            # L1 hit: free beyond the processor's 1-cycle op slot.
            l1_line = l1.lookup(line_addr)
            if l1_line is not None:
                l2_line = self.l2.probe(line_addr)
                if l2_line is not None and role == "R":
                    self._note_r_use(l2_line)
                return
            # L2 lookup.
            l2_line = self.l2.lookup(line_addr)
            if l2_line is not None and self._visible(l2_line, role):
                yield self.l2_port.serve(self.config.l2_hit_cycles)
                if role == "R":
                    self._note_r_use(l2_line)
                l1.insert(line_addr, SHARED)
                return
            # Miss: merge with an outstanding request when possible.
            pending = self._pending.get(line_addr)
            if pending is not None:
                # An R request cannot merge with a pending TRANSPARENT
                # fetch (the fill will be A-visible only); it still waits
                # for the MSHR entry to clear and then retries — one
                # outstanding request per line, like a real MSHR.
                if role == "A" or pending.kind != TRANSPARENT:
                    self._classify_merge(pending, role)
                yield pending.event
                # Whether merged or not, re-run the lookup: the fill may
                # have landed (hit) or already been displaced (retry).
                continue
            # Issue our own fetch (the miss tag check occupies the L2).
            yield self.l2_port.serve(self.config.l2_hit_cycles)
            if line_addr in self._pending:
                # Another request for the line slipped in while we were
                # queued at the L2 port; go around and merge with it.
                continue
            kind = TRANSPARENT if transparent else READ
            entry = self._fetch_begin(line_addr, kind, role)
            completed = False
            start = self.engine.now
            try:
                result = yield from self.fabric.fetch(
                    self.node_id, line_addr, kind, role)
                completed = True
                if self._fetch_hist is not None:
                    self._fetch_hist.observe(self.engine.now - start)
            finally:
                self._fetch_finish(line_addr, entry, completed)
            # fetch_kind is pinned to the request (a migratory grant may
            # answer a read with M; it is still a read for Figure 7).
            self._fill(line_addr, result, role, fetch_kind="read",
                       already_late=entry.late_classified)
            l1.insert(line_addr, SHARED)
            return

    def _classify_merge(self, pending: "_Pending", role: str) -> None:
        """An R request merging with an in-flight A fetch is the paper's
        A-Late outcome (recorded once per fill)."""
        if role == "R" and pending.role == "A" \
                and not pending.late_classified:
            pending.late_classified = True
            self.a_outcomes["late"] += 1
            if self.classifier is not None:
                self.classifier.on_a_fetch_late(pending.stat_kind)

    # ------------------------------------------------------------------
    # Store path
    # ------------------------------------------------------------------
    def store(self, proc_idx: int, role: str, line_addr: int,
              in_critical_section: bool = False) -> Generator:
        """Blocking store of one line (requires L2 ownership).

        A-streams never call this — their stores are skipped or converted to
        :meth:`exclusive_prefetch` by the slipstream executor.
        """
        if self.checker is not None:
            self.checker.on_store(self.node_id, role)
        self._note_stream_touch(line_addr, role)
        while True:
            if self.try_fast_store(proc_idx, role, line_addr,
                                   in_critical_section):
                return
            # A store to a resident shared copy still *reads* that copy
            # (read-modify-write): resolve an A-stream fill as Timely
            # before the upgrade replaces the line's flags.
            l2_line = self.l2.probe(line_addr)
            if (role == "R" and l2_line is not None
                    and not l2_line.transparent):
                self._note_r_use(l2_line)
            # Miss (not present, only a transparent copy, or shared and in
            # need of an upgrade): merge with an in-flight ownership
            # request or issue our own.
            pending = self._pending.get(line_addr)
            if pending is not None:
                if pending.grants_ownership:
                    self._classify_merge(pending, role)
                yield pending.event
                continue
            # The miss tag check occupies the single-ported L2.
            yield self.l2_port.serve(self.config.l2_hit_cycles)
            if line_addr in self._pending:
                continue  # another request slipped in at the port
            self.l2.misses += 1
            has_shared_copy = (l2_line is not None
                               and l2_line.state == SHARED
                               and not l2_line.transparent
                               and self.l2.probe(line_addr) is l2_line)
            # Protocols without a sharer vector cannot ack an upgrade
            # (the home can't tell a sharer from a stranger): full GETX.
            kind = (UPGRADE if has_shared_copy and self.caps.upgrades
                    else EXCL)
            entry = self._fetch_begin(line_addr, kind, role)
            completed = False
            start = self.engine.now
            try:
                result = yield from self.fabric.fetch(
                    self.node_id, line_addr, kind, role)
                completed = True
                if self._fetch_hist is not None:
                    self._fetch_hist.observe(self.engine.now - start)
            finally:
                self._fetch_finish(line_addr, entry, completed)
            line = self._fill(line_addr, result, role, fetch_kind="excl",
                              already_late=entry.late_classified)
            self._complete_store(proc_idx, line, in_critical_section)
            return

    def _complete_store(self, proc_idx: int, line: CacheLine,
                        in_critical_section: bool) -> None:
        if in_critical_section:
            line.written_in_cs = True
        # Write-invalidate within the node: drop the sibling L1's copy and
        # keep (or install) our own.
        sibling = 1 - proc_idx
        self.l1s[sibling].invalidate(line.line_addr)
        self.l1s[proc_idx].insert(line.line_addr, SHARED)

    # ------------------------------------------------------------------
    # A-stream exclusive prefetch (skipped store -> ownership hint)
    # ------------------------------------------------------------------
    def exclusive_prefetch(self, line_addr: int) -> None:
        """Non-binding, non-blocking GETX issued on behalf of the A-stream.

        Fire-and-forget: the A-stream does not wait for it.  Dropped if the
        node already owns the line or a covering request is outstanding.
        """
        self._note_stream_touch(line_addr, "A")
        l2_line = self.l2.probe(line_addr)
        if l2_line is not None and l2_line.state == MODIFIED:
            self.prefetches_dropped += 1
            return
        pending = self._pending.get(line_addr)
        if pending is not None:
            self.prefetches_dropped += 1
            return
        def run() -> Generator:
            # Re-check at process start: a demand request may have
            # registered in the MSHR (or ownership arrived) since the
            # prefetch was spawned.  Counting happens here, after the
            # re-check, so dropped prefetches never appear as issued.
            line = self.l2.probe(line_addr)
            if line_addr in self._pending or (
                    line is not None and line.state == MODIFIED):
                self.prefetches_dropped += 1
                return
            self.prefetches_issued += 1
            if self.classifier is not None:
                self.classifier.on_a_fetch_issued("excl")
            kind = UPGRADE if (line is not None
                               and line.state == SHARED
                               and not line.transparent
                               and self.caps.upgrades) else EXCL
            result, late = yield from self._fetch(line_addr, kind, "A",
                                                  classify=False)
            self._fill(line_addr, result, "A", fetch_kind="excl",
                       already_late=late)

        Process(self.engine, run(), name=f"xpf-{self.node_id}-{line_addr:#x}")

    def read_prefetch(self, line_addr: int) -> None:
        """Non-binding, non-blocking GETS on behalf of the R-stream
        (pattern-forwarding replay; see repro.slipstream.forwarding).

        Dropped if a usable copy is resident or a request is outstanding.
        Uncounted in the Figure 7 classification (it is machinery under an
        extension flag, not an A- or demand-R request).
        """
        line = self.l2.probe(line_addr)
        if line is not None and not line.transparent:
            self.prefetches_dropped += 1
            return
        if line_addr in self._pending:
            self.prefetches_dropped += 1
            return

        def run() -> Generator:
            line = self.l2.probe(line_addr)
            if line_addr in self._pending or (
                    line is not None and not line.transparent):
                self.prefetches_dropped += 1
                return
            self.prefetches_issued += 1
            result, _late = yield from self._fetch(line_addr, READ, "R",
                                                   classify=False)
            self._fill(line_addr, result, "R")

        Process(self.engine, run(),
                name=f"rpf-{self.node_id}-{line_addr:#x}")

    # ------------------------------------------------------------------
    # Fetch/fill internals
    # ------------------------------------------------------------------
    def _fetch_begin(self, line_addr: int, kind: str, role: str,
                     classify: bool = True) -> _Pending:
        """Publish an MSHR entry for an outgoing coherence fetch.

        Callers run ``fabric.fetch`` themselves (so this helper's frame is
        not on the generator delegation chain — every engine event pays one
        ``send`` walk per level) and must pair this with
        :meth:`_fetch_finish` in a ``finally`` block.
        """
        event = SimEvent(self.engine)
        entry = _Pending(event, kind, role)
        self._pending[line_addr] = entry
        if classify and self.classifier is not None:
            if role == "A":
                self.classifier.on_a_fetch_issued(entry.stat_kind)
            else:
                self.classifier.on_r_miss(self.node_id, line_addr,
                                          entry.stat_kind)
        return entry

    def _fetch_finish(self, line_addr: int, entry: _Pending,
                      completed: bool) -> None:
        """Retire an MSHR entry and wake merged waiters.

        ``entry.late_classified`` afterwards reports whether an R-stream
        request merged with this (A-stream) miss while it was in flight —
        that fill must not later be classified A-Only.
        """
        if not completed and self.checker is not None:
            # Killed between grant and fill (end-of-run A-stream
            # retirement): the directory may register a copy that
            # never lands.
            self.checker.on_fetch_aborted(self.node_id, line_addr)
        if self._pending.get(line_addr) is entry:
            del self._pending[line_addr]
        entry.event.trigger()

    def _fetch(self, line_addr: int, kind: str, role: str,
               classify: bool = True) -> Generator:
        """Issue a coherence fetch and publish it as the line's MSHR entry.

        Returns ``(result, late)``.  Retained as the convenience wrapper
        for the non-hot paths (prefetches, tests); the demand load/store
        paths inline the begin/finish pair instead.
        """
        entry = self._fetch_begin(line_addr, kind, role, classify=classify)
        completed = False
        start = self.engine.now
        try:
            result = yield from self.fabric.fetch(
                self.node_id, line_addr, kind, role)
            completed = True
            if self._fetch_hist is not None:
                self._fetch_hist.observe(self.engine.now - start)
        finally:
            self._fetch_finish(line_addr, entry, completed)
        return result, entry.late_classified

    def _fill(self, line_addr: int, result: FetchResult, role: str,
              fetch_kind: Optional[str] = None,
              already_late: bool = False) -> CacheLine:
        # An in-place refill (e.g. the R-stream replacing a transparent
        # copy) displaces a previous fill without an eviction callback:
        # resolve that fill's classification before the flags are reset.
        displaced = self.l2.probe(line_addr)
        if displaced is not None:
            self._note_line_lost(displaced)
        line = self.l2.insert(line_addr, result.state)
        line.transparent = result.transparent
        if result.si_hint:
            self.apply_si_hint(line_addr, line=line)
        line.fetcher_role = role
        line.fetch_kind = fetch_kind or (
            "excl" if result.state == MODIFIED else "read")
        # An R fill needs no A-Timely/Only resolution; an A fill that an
        # R request already merged with was classified A-Late at merge time.
        line.used_by_r = role == "R" or already_late
        if self.checker is not None:
            self.checker.on_fill(self.node_id, line_addr, line)
        p = self._p_fill
        if p is not None and p.live:
            p(f"node{self.node_id}", f"line={line_addr:#x}",
              role=role, state=result.state,
              transparent=result.transparent)
        m = self._metrics
        if m is not None:
            m.counter("l2.fill", node=self.node_id, role=role,
                      state=result.state).inc()
        return line

    def _visible(self, line: CacheLine, role: str) -> bool:
        """Transparent copies are visible only to the A-stream."""
        return role == "A" or not line.transparent

    # ------------------------------------------------------------------
    # Remote-initiated operations (called by the fabric)
    # ------------------------------------------------------------------
    def apply_invalidate(self, line_addr: int) -> bool:
        """External invalidation.  Returns True if we held the line in M."""
        line = self.l2.invalidate(line_addr)
        for l1 in self.l1s:
            l1.invalidate(line_addr)
        self._si_pending.discard(line_addr)
        if line is None:
            return False
        self._note_line_lost(line)
        if self.checker is not None:
            self.checker.on_line_dropped(self.node_id, line_addr)
        return line.state == MODIFIED

    def apply_downgrade(self, line_addr: int) -> bool:
        """External downgrade (read intervention).  True if we held M."""
        line = self.l2.probe(line_addr)
        if line is None:
            return False
        had_m = line.state == MODIFIED
        self.l2.downgrade(line_addr)
        if self.checker is not None:
            self.checker.on_line_dropped(self.node_id, line_addr)
        return had_m

    def apply_si_hint(self, line_addr: int,
                      line: Optional[CacheLine] = None) -> None:
        """Record a self-invalidation hint from the directory."""
        if line is None:
            line = self.l2.probe(line_addr)
        if line is None or line.state != MODIFIED:
            self.si_stale_hints += 1
            if self.checker is not None:
                self.checker.on_si_apply(self.node_id, line_addr, False)
            return
        line.si_hint = True
        self._si_pending.add(line_addr)
        if self.checker is not None:
            self.checker.on_si_apply(self.node_id, line_addr, True)

    # ------------------------------------------------------------------
    # Sync-point self-invalidation (directoryless protocols)
    # ------------------------------------------------------------------
    def sync_self_invalidate(self) -> None:
        """Bulk-invalidate every clean line at a synchronization point.

        Protocols with ``caps.sync_self_invalidate`` (no sharer tracking
        at the home) recover coherence for shared data here: when a task
        on this node reaches a barrier / lock acquire / event wait, all
        potentially-stale clean copies are dropped, so post-sync reads
        re-fetch current data.  Safe for the data-race-free programs the
        workloads model.  Dirty (M) lines stay — the home tracks their
        owner and interventions keep them coherent.  Flash invalidation:
        tag-array work charged at zero simulated cycles, matching the
        one-cycle gang-clear valid-bit arrays such schemes assume.
        """
        stale = [line.line_addr for line in self.l2.resident_lines()
                 if line.state != MODIFIED
                 and line.line_addr not in self._pending]
        for line_addr in stale:
            self.apply_invalidate(line_addr)
        self.sync_invalidations += len(stale)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _on_l2_evict(self, victim: CacheLine) -> None:
        line_addr = victim.line_addr
        for l1 in self.l1s:  # inclusion
            l1.invalidate(line_addr)
        self._si_pending.discard(line_addr)
        self._note_line_lost(victim)
        if victim.state == MODIFIED:
            self.fabric.writeback(self.node_id, line_addr)
        elif self.caps.replacement_hints:
            self.fabric.replacement_hint(self.node_id, line_addr,
                                         victim.transparent)
        # else: silent clean eviction — the home never tracked the copy

    # ------------------------------------------------------------------
    # Self-invalidation drain (Section 4.2/4.3)
    # ------------------------------------------------------------------
    def start_si_drain(self) -> None:
        """Kick the asynchronous SI drain (R-stream reached a sync point).

        Hinted lines are processed at one per ``si_drain_interval`` cycles,
        overlapped with the barrier/unlock wait.  Lines written inside a
        critical section are invalidated (migratory); others are written
        back and downgraded to shared (producer-consumer).
        """
        if not self._si_pending:
            return
        if self._si_drainer is not None and not self._si_drainer.done:
            return  # drain already in progress; it will see the new lines
        self._si_drainer = Process(self.engine, self._drain_all(),
                                   name=f"si-drain[{self.node_id}]")

    def _drain_all(self) -> Generator:
        start = self.engine.now
        drained = 0
        while self._si_pending:
            # Drain in sorted batches (hints arriving mid-drain join the
            # next batch) instead of re-scanning the set per line.
            batch = sorted(self._si_pending)
            self._si_pending.difference_update(batch)
            drained += len(batch)
            yield from self._drain_lines(batch)
        p = self._p_drain
        if p is not None and p.live:
            dur = self.engine.now - start
            p(f"node{self.node_id}", f"lines={drained}",
              lines=drained, _dur=dur)

    def _drain_lines(self, batch) -> Generator:
        for line_addr in batch:
            yield Timeout(self.config.si_drain_interval)
            line = self.l2.probe(line_addr)
            if line is None or line.state != MODIFIED or not line.si_hint:
                self.si_stale_hints += 1
                continue
            line.si_hint = False
            if line.written_in_cs:
                self.si_invalidated += 1
                p = self._p_si_inval
                if p is not None and p.live:
                    p(f"node{self.node_id}", f"line={line_addr:#x}")
                removed = self.l2.invalidate(line_addr)
                for l1 in self.l1s:
                    l1.invalidate(line_addr)
                if removed is not None:
                    self._note_line_lost(removed)
                self.fabric.writeback(self.node_id, line_addr)
            else:
                self.si_downgraded += 1
                p = self._p_si_downgrade
                if p is not None and p.live:
                    p(f"node{self.node_id}", f"line={line_addr:#x}")
                self.l2.downgrade(line_addr)
                self.fabric.writeback_downgrade(self.node_id, line_addr)

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def finalize_classification(self) -> None:
        """Resolve still-resident A-fetched-but-unused lines as A-Only."""
        if self.classifier is None:
            return
        for line in self.l2.resident_lines():
            if line.fetcher_role == "A" and not line.used_by_r:
                self.a_outcomes["only"] += 1
                self.classifier.on_a_fetch_only(line.fetch_kind)
                line.used_by_r = True
