"""Memory system: address space, caches, directory coherence, interconnect.

The memory system is where slipstream's benefits (and costs) play out, so it
is the most detailed part of the model:

* :mod:`repro.memory.address` — shared address space, line/page geometry,
  page-round-robin home-node mapping, and the array allocator workloads use.
* :mod:`repro.memory.cache` — set-associative LRU tag arrays for the private
  L1s and the shared per-node L2, including the *transparent* and *SI-hint*
  line flags that Section 4 of the paper adds.
* :mod:`repro.memory.network` — fixed-delay interconnect with contention at
  per-node input/output ports.
* :mod:`repro.memory.directory` — fully-mapped invalidate directory state,
  including the future-sharer list.
* :mod:`repro.memory.protocol` — the coherence fabric: GETS / GETX / UPGRADE
  / transparent-load transactions, interventions, invalidation fan-out,
  writebacks, all charged with Table 1 latencies and occupancies.
* :mod:`repro.memory.l2ctrl` — the node-side shared-L2 controller: hit/miss
  paths, MSHR merging of the two on-chip processors' requests, evictions,
  exclusive prefetch, and the self-invalidation drain.
* :mod:`repro.memory.proto` — the protocols themselves as declarative
  transition tables (``dir-inv``, ``dls``), the generic interpreter the
  fabric dispatches through, and the static protocol lint.
"""

from repro.memory.address import AddressSpace, SharedAllocator, SharedArray
from repro.memory.cache import Cache, CacheLine
from repro.memory.directory import DirectoryEntry, DirectoryState
from repro.memory.l2ctrl import L2Controller
from repro.memory.network import Network
from repro.memory.proto import ProtocolEngine, ProtocolTable
from repro.memory.protocol import CoherenceFabric

__all__ = [
    "AddressSpace",
    "Cache",
    "CacheLine",
    "CoherenceFabric",
    "DirectoryEntry",
    "DirectoryState",
    "L2Controller",
    "Network",
    "ProtocolEngine",
    "ProtocolTable",
    "SharedAllocator",
    "SharedArray",
]
