"""Shared address space, home-node mapping, and array allocation.

Workloads allocate named shared arrays through :class:`SharedAllocator` and
compute element addresses with :meth:`SharedArray.addr`.  Addresses are plain
integers; the cache/directory layers only ever see *line* addresses
(``addr >> line_shift``).

Home-node assignment is page-granular round-robin, approximating the
physically-distributed memory of an Origin-class machine without modeling an
OS page allocator.  Workloads that want locality can allocate per-task
arrays with :meth:`SharedAllocator.alloc_on`, which places the pages on a
chosen home node (the moral equivalent of first-touch placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class AddressSpace:
    """Geometry of the shared address space.

    Translates byte addresses to cache-line and page numbers and maps each
    page to its home node.
    """

    def __init__(self, n_nodes: int, line_size: int = 64, page_size: int = 4096):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if line_size & (line_size - 1) or page_size & (page_size - 1):
            raise ValueError("line and page sizes must be powers of two")
        if page_size % line_size:
            raise ValueError("page size must be a multiple of line size")
        self.n_nodes = n_nodes
        self.line_size = line_size
        self.page_size = page_size
        self.line_shift = line_size.bit_length() - 1
        self.page_shift = page_size.bit_length() - 1
        # page -> home overrides for placed allocations
        self._page_homes: Dict[int, int] = {}

    def line_of(self, addr: int) -> int:
        return addr >> self.line_shift

    def page_of(self, addr: int) -> int:
        return addr >> self.page_shift

    def page_of_line(self, line: int) -> int:
        return line >> (self.page_shift - self.line_shift)

    def home_of_line(self, line: int) -> int:
        """Home node of a cache line (owner of its directory entry)."""
        page = self.page_of_line(line)
        override = self._page_homes.get(page)
        if override is not None:
            return override
        return page % self.n_nodes

    def place_page(self, page: int, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        self._page_homes[page] = node

    def lines_in_range(self, base: int, nbytes: int) -> Iterator[int]:
        first = self.line_of(base)
        last = self.line_of(base + nbytes - 1)
        return iter(range(first, last + 1))


@dataclass(frozen=True)
class SharedArray:
    """Handle to a shared, row-major, fixed-element-size array."""

    name: str
    base: int
    shape: Tuple[int, ...]
    elem_size: int

    @property
    def nbytes(self) -> int:
        total = self.elem_size
        for dim in self.shape:
            total *= dim
        return total

    @property
    def size(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def addr(self, *idx: int) -> int:
        """Byte address of element ``[i, j, ...]`` (row-major, bounds-checked)."""
        if len(idx) != len(self.shape):
            raise IndexError(
                f"{self.name}: expected {len(self.shape)} indices, got {len(idx)}")
        flat = 0
        for i, (index, dim) in enumerate(zip(idx, self.shape)):
            if not 0 <= index < dim:
                raise IndexError(
                    f"{self.name}: index {index} out of range for axis {i} (dim {dim})")
            flat = flat * dim + index
        return self.base + flat * self.elem_size

    def addr_flat(self, flat: int) -> int:
        """Byte address of the ``flat``-th element (no per-axis checks)."""
        if not 0 <= flat < self.size:
            raise IndexError(f"{self.name}: flat index {flat} out of range")
        return self.base + flat * self.elem_size


class SharedAllocator:
    """Page-aligned bump allocator for the shared segment.

    Arrays never share a page, so home-node placement is per-array where
    requested and deterministic everywhere.
    """

    def __init__(self, space: AddressSpace, base: int = 0x1000_0000):
        self.space = space
        self._next = base
        self._arrays: Dict[str, SharedArray] = {}

    def alloc(self, name: str, shape: Sequence[int], elem_size: int = 8) -> SharedArray:
        """Allocate a shared array with default (round-robin) page homes."""
        return self._alloc(name, shape, elem_size, node=None)

    def alloc_on(self, name: str, shape: Sequence[int], node: int,
                 elem_size: int = 8) -> SharedArray:
        """Allocate a shared array whose pages are homed on ``node``."""
        return self._alloc(name, shape, elem_size, node=node)

    def _alloc(self, name: str, shape: Sequence[int], elem_size: int,
               node: Optional[int]) -> SharedArray:
        if name in self._arrays:
            raise ValueError(f"shared array {name!r} already allocated")
        if not shape or any(dim <= 0 for dim in shape):
            raise ValueError(f"invalid shape {tuple(shape)}")
        if elem_size <= 0:
            raise ValueError("elem_size must be positive")
        array = SharedArray(name, self._next, tuple(shape), elem_size)
        page_size = self.space.page_size
        n_pages = (array.nbytes + page_size - 1) // page_size
        if node is not None:
            first_page = self.space.page_of(array.base)
            for page in range(first_page, first_page + n_pages):
                self.space.place_page(page, node)
        self._next += n_pages * page_size
        self._arrays[name] = array
        return array

    def get(self, name: str) -> SharedArray:
        return self._arrays[name]

    @property
    def arrays(self) -> List[SharedArray]:
        return list(self._arrays.values())

    @property
    def total_bytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())
