"""Fully-mapped directory state.

One directory entry per cache line (allocated lazily), kept at the line's
home node.  The entry records the classic invalidate-protocol state —
uncached / shared / exclusive with a sharer bit-vector — plus the
**future-sharer list** that Section 4 of the paper adds: nodes whose
A-streams issued transparent loads for the line, used to generate
self-invalidation hints.

Directory transactions for a given line are serialized by a per-line guard
(the "busy bit" of real directory protocols); the protocol layer acquires it
before reading or mutating the entry.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.sim import Engine, SimSemaphore

UNCACHED = "U"
SHARED = "S"
EXCLUSIVE = "E"


class DirectoryEntry:
    """Directory state for a single cache line."""

    __slots__ = ("state", "sharers", "owner", "future_sharers",
                 "migrations", "last_writer")

    def __init__(self) -> None:
        self.state = UNCACHED
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None
        self.future_sharers: Set[int] = set()
        #: ownership transfers between *different* nodes — the signal the
        #: migratory-sharing optimization keys on.  Unlike ``owner`` this
        #: survives downgrades and writebacks, so the read-then-upgrade
        #: pattern of migratory data is visible.
        self.migrations = 0
        self.last_writer: Optional[int] = None

    def __repr__(self) -> str:
        return (f"<DirEntry {self.state} sharers={sorted(self.sharers)} "
                f"owner={self.owner} future={sorted(self.future_sharers)}>")

    # ------------------------------------------------------------------
    # State transitions (metadata only; latencies are charged by the
    # protocol layer)
    # ------------------------------------------------------------------
    def add_sharer(self, node: int) -> None:
        if self.state == EXCLUSIVE:
            raise RuntimeError("cannot add sharer to an exclusive entry")
        self.state = SHARED
        self.sharers.add(node)

    def set_exclusive(self, node: int) -> None:
        if self.last_writer is not None and self.last_writer != node:
            self.migrations += 1
        self.last_writer = node
        self.state = EXCLUSIVE
        self.owner = node
        self.sharers = set()

    def downgrade_owner_to_sharer(self) -> None:
        if self.state != EXCLUSIVE:
            raise RuntimeError("downgrade on non-exclusive entry")
        owner = self.owner
        self.state = SHARED
        self.owner = None
        self.sharers = {owner}

    def clear(self) -> None:
        self.state = UNCACHED
        self.sharers = set()
        self.owner = None

    def remove_sharer(self, node: int) -> None:
        self.sharers.discard(node)
        if self.state == SHARED and not self.sharers:
            self.state = UNCACHED

    def is_cached_by(self, node: int) -> bool:
        return node == self.owner or node in self.sharers


class DirectoryState:
    """All directory entries plus the per-line transaction guards."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._entries: Dict[int, DirectoryEntry] = {}
        self._guards: Dict[int, SimSemaphore] = {}

    def entry(self, line: int) -> DirectoryEntry:
        entry = self._entries.get(line)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line] = entry
        return entry

    def peek(self, line: int) -> Optional[DirectoryEntry]:
        """Entry if it exists (no allocation) — for tests and stats."""
        return self._entries.get(line)

    def guard(self, line: int) -> SimSemaphore:
        """Per-line mutual-exclusion semaphore (directory busy bit)."""
        guard = self._guards.get(line)
        if guard is None:
            guard = SimSemaphore(self.engine, initial=1)
            self._guards[line] = guard
        return guard

    # ------------------------------------------------------------------
    # Future-sharer bookkeeping (Section 4.2)
    # ------------------------------------------------------------------
    def add_future_sharer(self, line: int, node: int) -> None:
        self.entry(line).future_sharers.add(node)

    def reset_future_sharer(self, line: int, node: int) -> None:
        """Clear one node's future-sharer bit.

        Called when the line is evicted from that node, or when an R-stream
        request from that node reaches the directory (the sharing is no
        longer "future").
        """
        entry = self._entries.get(line)
        if entry is not None:
            entry.future_sharers.discard(node)

    def future_sharers_other_than(self, line: int, node: int) -> Set[int]:
        entry = self._entries.get(line)
        if entry is None:
            return set()
        return entry.future_sharers - {node}
