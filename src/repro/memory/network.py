"""Interconnection network model.

The paper models the processor interconnect as a fixed-delay network with
contention at the network inputs and outputs (and at the memory controller,
which lives in :mod:`repro.memory.protocol`).  We reproduce that: every
message occupies the sender's output port and the receiver's input port for
an occupancy that depends on whether it carries data, and spends
``net_time`` cycles in flight in between.  Transit is pipelined (no global
bandwidth limit); all queueing happens at the ports.
"""

from __future__ import annotations

from typing import Generator, List

from repro.sim import Engine, Resource


class Network:
    """Fixed-delay network with per-node input/output port contention."""

    def __init__(self, engine: Engine, n_nodes: int, net_time: int,
                 port_data_occupancy: int, port_ctrl_occupancy: int):
        self.engine = engine
        self.n_nodes = n_nodes
        self.net_time = net_time
        self.port_data_occupancy = port_data_occupancy
        self.port_ctrl_occupancy = port_ctrl_occupancy
        self.out_ports: List[Resource] = [
            Resource(engine, f"net-out[{i}]") for i in range(n_nodes)]
        self.in_ports: List[Resource] = [
            Resource(engine, f"net-in[{i}]") for i in range(n_nodes)]
        #: fault injector, if one was installed on the engine before the
        #: machine was assembled (see repro.faults)
        self.faults = engine.faults
        # statistics
        self.messages = 0
        self.data_messages = 0
        self.ctrl_messages = 0
        self.jitter_cycles = 0

    def _occupancy(self, data: bool) -> int:
        return self.port_data_occupancy if data else self.port_ctrl_occupancy

    def transfer(self, src: int, dst: int, data: bool = False) -> Generator:
        """Generator: move one message ``src -> dst`` (yield from it).

        Queues for the source output port and the destination input port,
        and flies for ``net_time`` cycles in between.  Ports are wormhole
        (cut-through) routed: a message waits for a busy port, but its own
        serialization overlaps its onward flight, so the zero-contention
        transfer latency is exactly ``net_time`` — matching the paper's
        290-cycle minimum remote miss.  A same-node transfer (e.g. an
        intervention whose owner is the home node) never enters the
        network and costs nothing here — its bus and DC hops are charged
        by the protocol layer.
        """
        if src == dst:
            return
        self._count(data)
        occupancy = self._occupancy(data)
        flight = self.net_time
        if self.faults is not None:
            extra = self.faults.net_jitter(src, dst)
            if extra:
                self.jitter_cycles += extra
                flight += extra
        yield self.out_ports[src].pass_through(occupancy)
        yield flight
        yield self.in_ports[dst].pass_through(occupancy)

    def post_transfer(self, src: int, dst: int, data: bool = False) -> None:
        """Fire-and-forget message: consumes port occupancy without blocking
        any caller (asynchronous hints, replacement notifications)."""
        if src == dst:
            return
        self._count(data)
        occupancy = self._occupancy(data)
        self.out_ports[src].post(occupancy)

        def arrive() -> None:
            self.in_ports[dst].post(occupancy)

        self.engine.schedule(occupancy + self.net_time, arrive)

    def _count(self, data: bool) -> None:
        self.messages += 1
        if data:
            self.data_messages += 1
        else:
            self.ctrl_messages += 1
