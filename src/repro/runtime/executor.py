"""Drives a task program on a processor (single/double-mode semantics).

:class:`TaskExecutor` is the conventional executor: every op is performed.
The slipstream R-stream executor subclasses it to add token insertion,
deviation checking, input forwarding, and self-invalidation kicks; the
A-stream executor (different op semantics entirely) lives in
:mod:`repro.slipstream.astream`.
"""

from __future__ import annotations

from typing import Generator, Iterator, Optional

from repro.machine.processor import Processor
from repro.runtime import ops as op
from repro.runtime.sync import SyncRegistry
from repro.runtime.task import TaskContext
from repro.sim import Process


class TaskExecutor:
    """Executes a program's ops one-for-one (conventional task)."""

    def __init__(self, processor: Processor, ctx: TaskContext,
                 program: Iterator, registry: SyncRegistry,
                 name: Optional[str] = None):
        self.processor = processor
        self.ctx = ctx
        self.program = program
        self.registry = registry
        self.name = name or f"task{ctx.task_id}({ctx.role})"
        self.session = 0          # completed sessions (barrier/event-waits)
        self.cs_depth = 0         # critical-section nesting
        self.process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Process:
        self.process = Process(self.processor.engine, self._run(),
                               name=self.name)
        return self.process

    def _run(self) -> Generator:
        do_compute = self.processor.do_compute
        for operation in self.program:
            # Compute is the most common op and never suspends: handle it
            # inline instead of allocating a dispatch generator for it.
            if type(operation) is op.Compute:
                do_compute(operation.cycles)
                continue
            yield from self.dispatch(operation)
        yield from self._finish()

    def _finish(self) -> Generator:
        yield from self.processor.flush()
        self.processor.mark_finished()

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------
    def dispatch(self, operation) -> Generator:
        kind = type(operation)
        if kind is op.Compute:
            self.processor.do_compute(operation.cycles)
        elif kind is op.Load:
            yield from self._on_load(operation)
        elif kind is op.Store:
            yield from self._on_store(operation)
        elif kind is op.Barrier:
            yield from self._on_barrier(operation)
        elif kind is op.LockAcquire:
            yield from self._on_lock_acquire(operation)
        elif kind is op.LockRelease:
            yield from self._on_lock_release(operation)
        elif kind is op.EventWait:
            yield from self._on_event_wait(operation)
        elif kind is op.EventSet:
            yield from self._on_event_set(operation)
        elif kind is op.EventClear:
            yield from self._on_event_clear(operation)
        elif kind is op.Input:
            yield from self._on_input(operation)
        elif kind is op.Output:
            yield from self._on_output(operation)
        else:
            raise TypeError(f"unknown operation {operation!r}")

    # ------------------------------------------------------------------
    # Default (conventional) semantics; slipstream executors override.
    # ------------------------------------------------------------------
    def _on_load(self, operation) -> Generator:
        yield from self.processor.do_load(self.ctx.role, operation.addr)

    def _on_store(self, operation) -> Generator:
        yield from self.processor.do_store(
            self.ctx.role, operation.addr,
            in_critical_section=self.cs_depth > 0)

    def _on_barrier(self, operation) -> Generator:
        barrier = self.registry.barrier(operation.bid)
        yield from self.processor.timed_wait(barrier.arrive(), "barrier")
        self.session += 1

    def _on_lock_acquire(self, operation) -> Generator:
        lock = self.registry.lock(operation.lid)
        yield from self.processor.timed_wait(lock.acquire(self), "lock")
        self.cs_depth += 1

    def _on_lock_release(self, operation) -> Generator:
        if self.cs_depth <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self.cs_depth -= 1
        # Releases are globally visible: flush accumulated local time so
        # the hand-off happens at the right simulated instant.
        yield from self.processor.flush()
        self.registry.lock(operation.lid).release(self)
        self.processor.do_compute(1)

    def _on_event_wait(self, operation) -> Generator:
        event = self.registry.event(operation.eid)
        yield from self.processor.timed_wait(event.wait(), "barrier")
        self.session += 1

    def _on_event_set(self, operation) -> Generator:
        yield from self.processor.flush()
        self.registry.event(operation.eid).set()
        self.processor.do_compute(1)

    def _on_event_clear(self, operation) -> Generator:
        yield from self.processor.flush()
        self.registry.event(operation.eid).clear()
        self.processor.do_compute(1)

    def _on_input(self, operation) -> Generator:
        self.processor.do_compute(operation.cycles)
        # Flush so a forwarded result (slipstream) is timestamped after
        # the operation's cost.
        yield from self.processor.flush()
        self.ctx.inputs[operation.key] = True

    def _on_output(self, operation) -> Generator:
        self.processor.do_compute(operation.cycles)
        return
        yield  # pragma: no cover
