"""Drives a task program on a processor (single/double-mode semantics).

:class:`TaskExecutor` is the conventional executor: every op is performed.
The slipstream R-stream executor subclasses it to add token insertion,
deviation checking, input forwarding, and self-invalidation kicks; the
A-stream executor (different op semantics entirely) lives in
:mod:`repro.slipstream.astream`.

Two execution paths produce identical simulations:

* the **generator path** (``program``) pulls ``Op`` objects from the
  workload generator and type-dispatches each one;
* the **tape path** (``tape``, see :mod:`repro.workloads.tape`) replays a
  pre-compiled stream of ``(opcode, int)`` steps in a tight loop, calling
  the processor's plain-function probes directly and dropping into
  generator dispatch only for misses and non-memory ops.

The paths are cycle-identical because the batched ops (compute bursts,
L1-hit loads, owned-line fast stores) never yield to the engine, so no
simulation state can change between them either way.
"""

from __future__ import annotations

from typing import Generator, Iterator, Optional

from repro.machine.processor import Processor
from repro.runtime import ops as op
from repro.runtime.ops import OP_COMPUTE, OP_LOAD, OP_STORE
from repro.runtime.sync import SyncRegistry
from repro.runtime.task import TaskContext
from repro.sim import Process


class TaskExecutor:
    """Executes a program's ops one-for-one (conventional task)."""

    def __init__(self, processor: Processor, ctx: TaskContext,
                 program: Optional[Iterator], registry: SyncRegistry,
                 name: Optional[str] = None, tape=None, tape_start: int = 0):
        self.processor = processor
        self.ctx = ctx
        self.program = program
        self.registry = registry
        #: compiled OpTape replayed instead of ``program`` when set
        self.tape = tape
        #: replay start step (used by recovery reforks; see seek_session)
        self.tape_start = tape_start
        self.name = name or f"task{ctx.task_id}({ctx.role})"
        self.session = 0          # completed sessions (barrier/event-waits)
        self.cs_depth = 0         # critical-section nesting
        self.process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Process:
        # The tape path gets its own process body: the replay loop IS the
        # outermost generator, so every engine resume reaches the waiting
        # frame without trampolining through a wrapper.
        body = self._replay() if self.tape is not None else self._run()
        self.process = Process(self.processor.engine, body, name=self.name)
        return self.process

    def _run(self) -> Generator:
        do_compute = self.processor.do_compute
        for operation in self.program:
            # Compute is the most common op and never suspends: handle it
            # inline instead of allocating a dispatch generator for it.
            if type(operation) is op.Compute:
                do_compute(operation.cycles)
                continue
            yield from self.dispatch(operation)
        yield from self._finish()

    def _replay(self) -> Generator:
        """Tape path: consume compute + L1-hit + fast-store runs in a
        tight loop; only misses and generic ops reach the generators.

        The bodies of :meth:`Processor.probe_load` / ``probe_store`` /
        ``flush`` are inlined here (their semantics — counter order, the
        per-op fault-stall opportunity, the single flush before a
        globally-visible action — must be kept in lockstep; the
        differential tests in tests/test_tape.py enforce it).
        """
        tape = self.tape
        steps = tape.steps
        if self.tape_start:
            steps = steps[self.tape_start:]
        objs = tape.objs
        processor = self.processor
        engine = processor.engine
        ctrl = processor.ctrl
        proc_idx = processor.proc_idx
        breakdown = processor.breakdown
        l1_lookup = processor._l1.lookup
        try_fast_store = ctrl.try_fast_store
        charge = processor._charge
        dispatch = self.dispatch
        role = self.ctx.role
        # L1-hit bookkeeping is a no-op for every role this loop runs with
        # except 'R' (the A-stream has its own replay loop): skip the call
        # entirely for 'N' tasks.
        on_l1_hit = ctrl.on_l1_hit if role == "R" else None
        faults = processor._faults   # fixed for the run's duration
        # Batched counters: each hit-run op bumps cheap locals; they are
        # committed to the processor before anything externally visible (a
        # yield to the engine, or dispatch of a generic op).  `pend` is
        # both the pending busy cycles and the pending local-time cycles —
        # every batched op contributes equally to breakdown.busy and
        # processor._acc, so one local covers both.  A fault-injected
        # stall goes straight to processor._acc (see _maybe_stall) and is
        # summed with `pend` at the flush, preserving the oracle's timing.
        pend = 0
        n_ops = n_loads = n_stores = 0
        for code, arg in steps:
            if code == OP_COMPUTE:
                pend += arg
            elif code == OP_LOAD:
                n_ops += 1
                n_loads += 1
                pend += 1
                if faults is not None:
                    processor._maybe_stall()
                if l1_lookup(arg) is not None:
                    if on_l1_hit is not None:
                        on_l1_hit(arg, role)
                else:
                    processor.ops += n_ops
                    processor.loads += n_loads
                    processor.stores += n_stores
                    breakdown.busy += pend
                    delay = processor._acc + pend
                    n_ops = n_loads = n_stores = 0
                    pend = 0
                    if delay:
                        processor._acc = 0
                        yield delay
                    begin = engine.now
                    yield from ctrl.load(proc_idx, role, arg)
                    charge("stall", engine.now - begin)
            elif code == OP_STORE:
                n_ops += 1
                n_stores += 1
                pend += 1
                if faults is not None:
                    processor._maybe_stall()
                in_cs = self.cs_depth > 0
                if not try_fast_store(proc_idx, role, arg, in_cs):
                    processor.ops += n_ops
                    processor.loads += n_loads
                    processor.stores += n_stores
                    breakdown.busy += pend
                    delay = processor._acc + pend
                    n_ops = n_loads = n_stores = 0
                    pend = 0
                    if delay:
                        processor._acc = 0
                        yield delay
                    begin = engine.now
                    yield from ctrl.store(proc_idx, role, arg,
                                          in_critical_section=in_cs)
                    charge("stall", engine.now - begin)
            else:
                processor.ops += n_ops
                processor.loads += n_loads
                processor.stores += n_stores
                breakdown.busy += pend
                processor._acc += pend
                n_ops = n_loads = n_stores = 0
                pend = 0
                yield from dispatch(objs[arg])
        processor.ops += n_ops
        processor.loads += n_loads
        processor.stores += n_stores
        breakdown.busy += pend
        processor._acc += pend
        yield from self._finish()

    def _finish(self) -> Generator:
        yield from self.processor.flush()
        self.processor.mark_finished()

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------
    def dispatch(self, operation) -> Generator:
        kind = type(operation)
        if kind is op.Compute:
            self.processor.do_compute(operation.cycles)
        elif kind is op.Load:
            yield from self._on_load(operation)
        elif kind is op.Store:
            yield from self._on_store(operation)
        elif kind is op.Barrier:
            yield from self._on_barrier(operation)
        elif kind is op.LockAcquire:
            yield from self._on_lock_acquire(operation)
        elif kind is op.LockRelease:
            yield from self._on_lock_release(operation)
        elif kind is op.EventWait:
            yield from self._on_event_wait(operation)
        elif kind is op.EventSet:
            yield from self._on_event_set(operation)
        elif kind is op.EventClear:
            yield from self._on_event_clear(operation)
        elif kind is op.Input:
            yield from self._on_input(operation)
        elif kind is op.Output:
            yield from self._on_output(operation)
        else:
            raise TypeError(f"unknown operation {operation!r}")

    # ------------------------------------------------------------------
    # Default (conventional) semantics; slipstream executors override.
    # ------------------------------------------------------------------
    def _on_load(self, operation) -> Generator:
        yield from self.processor.do_load(self.ctx.role, operation.addr)

    def _on_store(self, operation) -> Generator:
        yield from self.processor.do_store(
            self.ctx.role, operation.addr,
            in_critical_section=self.cs_depth > 0)

    def _on_barrier(self, operation) -> Generator:
        barrier = self.registry.barrier(operation.bid)
        yield from self.processor.timed_wait(barrier.arrive(), "barrier")
        self.session += 1
        self._sync_point()

    def _on_lock_acquire(self, operation) -> Generator:
        lock = self.registry.lock(operation.lid)
        yield from self.processor.timed_wait(lock.acquire(self), "lock")
        self.cs_depth += 1
        self._sync_point()

    def _on_lock_release(self, operation) -> Generator:
        if self.cs_depth <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self.cs_depth -= 1
        # Releases are globally visible: flush accumulated local time so
        # the hand-off happens at the right simulated instant.
        yield from self.processor.flush()
        self.registry.lock(operation.lid).release(self)
        self.processor.do_compute(1)

    def _on_event_wait(self, operation) -> Generator:
        event = self.registry.event(operation.eid)
        yield from self.processor.timed_wait(event.wait(), "barrier")
        self.session += 1
        self._sync_point()

    def _sync_point(self) -> None:
        """Acquire-side synchronization reached.  Protocols without
        sharer tracking (caps.sync_self_invalidate) drop this node's
        stale clean copies here; a no-op attribute test otherwise."""
        ctrl = self.processor.ctrl
        if ctrl.sync_si:
            ctrl.sync_self_invalidate()

    def _on_event_set(self, operation) -> Generator:
        yield from self.processor.flush()
        self.registry.event(operation.eid).set()
        self.processor.do_compute(1)

    def _on_event_clear(self, operation) -> Generator:
        yield from self.processor.flush()
        self.registry.event(operation.eid).clear()
        self.processor.do_compute(1)

    def _on_input(self, operation) -> Generator:
        self.processor.do_compute(operation.cycles)
        # Flush so a forwarded result (slipstream) is timestamped after
        # the operation's cost.
        yield from self.processor.flush()
        self.ctx.inputs[operation.key] = True

    def _on_output(self, operation) -> Generator:
        self.processor.do_compute(operation.cycles)
        return
        yield  # pragma: no cover
