"""Task identity and context.

A :class:`TaskContext` is what a workload program sees: its task id, the
total task count, and (in slipstream mode) which stream it is.  Programs
must derive *all* control flow and addressing from the context and private
state — that is the SPMD property the paper's A-stream accuracy argument
rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

ROLE_NORMAL = "N"      # single/double mode task
ROLE_R = "R"           # slipstream full task
ROLE_A = "A"           # slipstream reduced task


@dataclass
class TaskContext:
    """Runtime identity handed to a workload program."""

    task_id: int
    n_tasks: int
    role: str = ROLE_NORMAL
    #: values produced by Input ops (filled by the executor; keyed by the
    #: Input op's key).  The A-stream receives the R-stream's values.
    inputs: Dict[object, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.task_id < self.n_tasks:
            raise ValueError(
                f"task_id {self.task_id} out of range for {self.n_tasks} tasks")
        if self.role not in (ROLE_NORMAL, ROLE_R, ROLE_A):
            raise ValueError(f"unknown role {self.role!r}")

    @property
    def is_astream(self) -> bool:
        return self.role == ROLE_A

    def sibling(self, role: str) -> "TaskContext":
        """The same logical task under a different role (A-stream fork)."""
        return TaskContext(self.task_id, self.n_tasks, role=role,
                           inputs=self.inputs)
