"""Operation vocabulary for task programs.

A task program is a generator yielding these operations.  Shared-memory
behaviour is explicit (``Load``/``Store`` carry byte addresses into the
shared segment); everything private — register arithmetic, stack traffic,
loop control — is folded into ``Compute`` bursts, matching the paper's
observation that SPMD kernels compute addresses and control flow from
private data.

The slipstream A-stream executor reinterprets several of these ops (skips
synchronization, drops or converts stores, forwards ``Input`` results), so
the *same program* serves as R-stream and A-stream, exactly as in the paper.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Compiled-tape opcodes (see repro.workloads.tape).  The three hot ops
# that never suspend on their fast path get dense small codes; everything
# else (synchronization, I/O) is replayed through the original Op object.
# Defined here — not in the tape module — so the executor's replay loop
# can import them without touching the workloads package.
# ----------------------------------------------------------------------
OP_COMPUTE, OP_LOAD, OP_STORE, OP_GENERIC = 0, 1, 2, 3


class Op:
    """Base class (for isinstance checks in tests)."""

    __slots__ = ()


class Compute(Op):
    """Execute ``cycles`` of private computation."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise ValueError("compute burst cannot be negative")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Compute({self.cycles})"


class Load(Op):
    """Read shared memory at byte address ``addr``."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"Load({self.addr:#x})"


class Store(Op):
    """Write shared memory at byte address ``addr``."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"Store({self.addr:#x})"


class Barrier(Op):
    """Global barrier.  Ends a *session* (A-R synchronization point)."""

    __slots__ = ("bid",)

    def __init__(self, bid="main"):
        self.bid = bid

    def __repr__(self) -> str:
        return f"Barrier({self.bid!r})"


class LockAcquire(Op):
    """Acquire a global lock (enter a critical section)."""

    __slots__ = ("lid",)

    def __init__(self, lid):
        self.lid = lid

    def __repr__(self) -> str:
        return f"LockAcquire({self.lid!r})"


class LockRelease(Op):
    """Release a global lock (leave a critical section)."""

    __slots__ = ("lid",)

    def __init__(self, lid):
        self.lid = lid

    def __repr__(self) -> str:
        return f"LockRelease({self.lid!r})"


class EventWait(Op):
    """Wait for a flag event.  Ends a session, like a barrier."""

    __slots__ = ("eid",)

    def __init__(self, eid):
        self.eid = eid

    def __repr__(self) -> str:
        return f"EventWait({self.eid!r})"


class EventSet(Op):
    """Set a flag event (wakes all waiters).  Skipped by A-streams."""

    __slots__ = ("eid",)

    def __init__(self, eid):
        self.eid = eid

    def __repr__(self) -> str:
        return f"EventSet({self.eid!r})"


class EventClear(Op):
    """Clear a flag event.  Skipped by A-streams."""

    __slots__ = ("eid",)

    def __init__(self, eid):
        self.eid = eid

    def __repr__(self) -> str:
        return f"EventClear({self.eid!r})"


class Input(Op):
    """A once-only global operation whose result the program consumes
    (system call, I/O read, shared allocation).

    The R-stream performs it (``cycles`` of cost); the A-stream waits for
    the R-stream's result, forwarded through a shared location (Section
    3.2: "After the operation is completed by the R-stream, its return
    value is passed to the A-stream").
    """

    __slots__ = ("key", "cycles")

    def __init__(self, key, cycles: int = 100):
        self.key = key
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Input({self.key!r})"


class Output(Op):
    """A once-only global side effect (I/O write).  R-streams pay
    ``cycles``; A-streams skip it entirely."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int = 100):
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Output({self.cycles})"
