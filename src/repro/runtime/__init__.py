"""Parallel-program runtime: operations, synchronization, tasks, executors.

Workloads are *operation-stream programs*: Python generators that yield the
ops in :mod:`repro.runtime.ops` (compute bursts, shared loads/stores,
barriers, locks, events...).  Executors (:mod:`repro.runtime.executor`)
drive these programs through a :class:`~repro.machine.processor.Processor`.
The slipstream-aware A-stream executor lives in :mod:`repro.slipstream`.

Synchronization objects (:mod:`repro.runtime.sync`) play the role of the
paper's slipstream-aware parallel library (modified ANL macros): R-streams
execute them normally, A-streams skip them under A-R token control.
"""

from repro.runtime.ops import (Barrier, Compute, EventClear, EventSet,
                               EventWait, Input, Load, LockAcquire,
                               LockRelease, Output, Store)
from repro.runtime.sync import SyncBarrier, SyncEvent, SyncLock, SyncRegistry
from repro.runtime.task import TaskContext

__all__ = [
    "Barrier", "Compute", "EventClear", "EventSet", "EventWait", "Input",
    "Load", "LockAcquire", "LockRelease", "Output", "Store",
    "SyncBarrier", "SyncEvent", "SyncLock", "SyncRegistry", "TaskContext",
]
