"""Synchronization objects (the slipstream-aware parallel library).

These model the system-provided barrier/lock/event routines the paper
modifies (the ANL macros of SPLASH-2).  Rather than simulating the
shared-memory loads and stores inside the routines, each object charges a
latency consistent with its implementation (see DESIGN.md):

* barrier arrival costs ``barrier_entry_cycles`` of communication; release
  fans out ``barrier_release_cycles`` after the last arrival;
* an uncontended lock acquire is a round trip to the lock's home
  (``lock_local_cycles``); a contended hand-off costs a remote-miss-like
  ``lock_transfer_cycles``;
* events are sticky flags with broadcast wakeup.

R-streams execute these normally.  A-streams never call them — the
slipstream executor skips them under A-R token control.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, Optional, Tuple

from repro.config import MachineConfig
from repro.sim import Engine, Resource, Signal, SimEvent, Timeout


class SyncBarrier:
    """Reusable (generation-counted) global barrier.

    Arrivals *serialize* on the barrier's shared counter (an ANL-style
    barrier increments a counter line that ping-pongs between arriving
    processors), so an episode with ``n`` simultaneous arrivals costs the
    last arriver about ``n * entry_cycles`` — the O(participants) behaviour
    real software barriers exhibit, and one of the reasons doubling the
    task count stops paying off (Figure 1).
    """

    def __init__(self, engine: Engine, n_participants: int,
                 entry_cycles: int, release_cycles: int):
        if n_participants < 1:
            raise ValueError("barrier needs at least one participant")
        self.engine = engine
        self.n_participants = n_participants
        self.entry_cycles = entry_cycles
        self.release_cycles = release_cycles
        self._counter = Resource(engine, "barrier-counter")
        self._count = 0
        self._generation = 0
        self._events: Dict[int, SimEvent] = {}
        # statistics
        self.episodes = 0

    def arrive(self) -> Generator:
        """Generator: enter the barrier and block until everyone arrives."""
        yield self._counter.serve(self.entry_cycles)
        generation = self._generation
        self._count += 1
        if self._count == self.n_participants:
            self._count = 0
            self._generation += 1
            self.episodes += 1
            event = self._events.pop(generation, None)
            if event is not None:
                self.engine.schedule(self.release_cycles, event.trigger)
            yield Timeout(self.release_cycles)
        else:
            event = self._events.get(generation)
            if event is None:
                event = SimEvent(self.engine)
                self._events[generation] = event
            yield event


class SyncLock:
    """FIFO queueing lock with home-based transfer costs."""

    def __init__(self, engine: Engine, local_cycles: int,
                 transfer_cycles: int):
        self.engine = engine
        self.local_cycles = local_cycles
        self.transfer_cycles = transfer_cycles
        self._held_by: Optional[object] = None
        self._queue: Deque[Tuple[object, SimEvent]] = deque()
        # statistics
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self, owner: object) -> Generator:
        """Generator: acquire the lock on behalf of ``owner``."""
        self.acquisitions += 1
        if self._held_by is None and not self._queue:
            self._held_by = owner
            yield Timeout(self.local_cycles)
            return
        self.contended_acquisitions += 1
        event = SimEvent(self.engine)
        self._queue.append((owner, event))
        yield event

    def release(self, owner: object) -> None:
        if self._held_by is not owner:
            raise RuntimeError(
                f"lock released by {owner!r} but held by {self._held_by!r}")
        if self._queue:
            next_owner, event = self._queue.popleft()
            self._held_by = next_owner
            # Lock transfer: the released line migrates to the next owner.
            self.engine.schedule(self.transfer_cycles, event.trigger)
        else:
            self._held_by = None

    @property
    def holder(self) -> Optional[object]:
        return self._held_by

    @property
    def waiters(self) -> int:
        return len(self._queue)


class SyncEvent:
    """Sticky flag event with broadcast wakeup (pairwise producer-consumer
    synchronization; the paper treats event-wait as a session boundary)."""

    def __init__(self, engine: Engine, notify_cycles: int = 20):
        self.engine = engine
        self.notify_cycles = notify_cycles
        self.flag = False
        self._signal = Signal(engine)
        self._generation = 0

    def wait(self) -> Generator:
        if self.flag:
            yield Timeout(self.notify_cycles)
            return
        yield self._signal

    def set(self) -> None:
        self.flag = True
        generation = self._generation

        def fire() -> None:
            # A clear() between set() and the wakeup cancels the broadcast
            # (otherwise a waiter that blocked after the clear would be
            # spuriously released).
            if self._generation == generation and self.flag:
                self._signal.fire()

        self.engine.schedule(self.notify_cycles, fire)

    def clear(self) -> None:
        self.flag = False
        self._generation += 1


class SyncRegistry:
    """Lazily-created synchronization objects, keyed by program-level ids.

    One registry per run; barrier participant counts equal the number of
    full (R-stream) tasks in the run.
    """

    def __init__(self, engine: Engine, config: MachineConfig,
                 n_participants: int):
        self.engine = engine
        self.config = config
        self.n_participants = n_participants
        self._barriers: Dict[object, SyncBarrier] = {}
        self._locks: Dict[object, SyncLock] = {}
        self._events: Dict[object, SyncEvent] = {}

    def barrier(self, bid) -> SyncBarrier:
        barrier = self._barriers.get(bid)
        if barrier is None:
            barrier = SyncBarrier(
                self.engine, self.n_participants,
                self.config.barrier_entry_cycles,
                self.config.barrier_release_cycles)
            self._barriers[bid] = barrier
        return barrier

    def lock(self, lid) -> SyncLock:
        lock = self._locks.get(lid)
        if lock is None:
            lock = SyncLock(self.engine, self.config.lock_local_cycles,
                            self.config.lock_transfer_cycles)
            self._locks[lid] = lock
        return lock

    def event(self, eid) -> SyncEvent:
        event = self._events.get(eid)
        if event is None:
            event = SyncEvent(self.engine)
            self._events[eid] = event
        return event
