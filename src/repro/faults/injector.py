"""Deterministic, seeded fault-decision engine.

A :class:`FaultInjector` is the single source of every injected fault in a
simulation.  It is installed on the :class:`~repro.sim.engine.Engine`
before the machine is assembled (``Engine.install_faults``, mirroring how
``repro.check`` installs), and the components that can fail — the network,
the coherence fabric, the processors, and the slipstream pairs — capture
the reference at construction time and *ask* it at each potential fault
site.  With no injector installed every hook site is a single ``is None``
test, so fault-free simulations are bit-identical to a build without the
subsystem.

Determinism contract:

* every fault domain draws from its own ``random.Random`` stream, seeded
  by the string ``f"{fault_seed}:{domain}"`` — stable across platforms
  and independent of ``PYTHONHASHSEED``.  Per-entity domains (one stream
  per CPU, per pair) keep one component's draw count from perturbing
  another's schedule;
* decisions depend only on ``(config, call sequence)``, and the simulator
  itself is deterministic, so a fixed ``(seed, fault_seed)`` reproduces
  the identical fault schedule — and therefore the identical run —
  bit for bit;
* every fault that actually *fires* is folded into a SHA-256
  :attr:`schedule fingerprint <FaultInjector.fingerprint>`, giving a
  stable id for "same faults happened in the same order".  Two runs with
  different fault seeds (and nonzero rates) fingerprint differently.

A rate of ``0.0`` for a model short-circuits before any RNG draw, so a
config with ``faults=True`` but every rate zero injects nothing, draws
nothing, and leaves timing untouched (pinned by the golden tests).
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter
from typing import Dict


class FaultInjector:
    """Seeded oracle answering "does this fault fire here?" questions."""

    def __init__(self, config):
        self.config = config
        self._streams: Dict[str, random.Random] = {}
        self._digest = hashlib.sha256()
        self.events = 0
        #: fired-fault counts per model (not per *decision*: clean draws
        #: are not counted, so an all-zero Counter means no fault fired)
        self.counts: Counter = Counter()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rng(self, domain: str) -> random.Random:
        rng = self._streams.get(domain)
        if rng is None:
            rng = random.Random(f"{self.config.fault_seed}:{domain}")
            self._streams[domain] = rng
        return rng

    def _record(self, kind: str, detail: str) -> None:
        self.counts[kind] += 1
        self.events += 1
        self._digest.update(f"{kind}:{detail}\n".encode())

    # ------------------------------------------------------------------
    # Network perturbation
    # ------------------------------------------------------------------
    def net_jitter(self, src: int, dst: int) -> int:
        """Extra in-flight cycles for one message (0 = no jitter)."""
        rate = self.config.fault_net_jitter_rate
        if rate <= 0.0 or self.config.fault_net_jitter_max <= 0:
            return 0
        rng = self._rng("net-jitter")
        if rng.random() >= rate:
            return 0
        extra = 1 + rng.randrange(self.config.fault_net_jitter_max)
        self._record("net_jitter", f"{src}->{dst}:{extra}")
        return extra

    def net_drop(self, src: int, dst: int, attempt: int) -> bool:
        """Transient loss of a request message (surfaced as a NACK)."""
        rate = self.config.fault_net_drop_rate
        if rate <= 0.0:
            return False
        if self._rng("net-drop").random() >= rate:
            return False
        self._record("net_drop", f"{src}->{dst}#{attempt}")
        return True

    # ------------------------------------------------------------------
    # A-stream corruption
    # ------------------------------------------------------------------
    def token_loss(self, task_id: int) -> bool:
        """An A-R token inserted by the R-stream is lost in flight."""
        rate = self.config.fault_token_loss_rate
        if rate <= 0.0:
            return False
        if self._rng(f"tok:{task_id}").random() >= rate:
            return False
        self._record("token_loss", f"pair{task_id}")
        return True

    def astream_corrupt(self, task_id: int, session: int) -> bool:
        """Force a control deviation in the A-stream at this sync point."""
        rate = self.config.fault_astream_corrupt_rate
        if rate <= 0.0:
            return False
        if self._rng(f"ast:{task_id}").random() >= rate:
            return False
        self._record("astream_corrupt", f"pair{task_id}@s{session}")
        return True

    # ------------------------------------------------------------------
    # Processor slowdown
    # ------------------------------------------------------------------
    def cpu_stall(self, node_id: int, proc_idx: int) -> int:
        """Transient per-CPU stall in cycles (0 = none)."""
        rate = self.config.fault_cpu_stall_rate
        if rate <= 0.0:
            return 0
        if self._rng(f"cpu:{node_id}.{proc_idx}").random() >= rate:
            return 0
        cycles = self.config.fault_cpu_stall_cycles
        self._record("cpu_stall", f"cpu{node_id}.{proc_idx}:{cycles}")
        return cycles

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """SHA-256 over every fired fault, in firing order."""
        return self._digest.hexdigest()

    def summary(self) -> Dict[str, object]:
        """JSON-able stats: per-model fire counts + schedule fingerprint."""
        data: Dict[str, object] = {k: v for k, v in sorted(self.counts.items())}
        data["events"] = self.events
        data["fingerprint"] = self.fingerprint
        return data

    def __repr__(self) -> str:
        return (f"<FaultInjector seed={self.config.fault_seed} "
                f"events={self.events}>")
