"""Harness-level chaos: deterministic faults for the *host* machinery.

``repro.faults.injector`` perturbs the simulated machine; this module
perturbs the machinery that runs it — worker processes and the serving
layer's write-ahead journal.  A :class:`HarnessChaos` answers three
questions, all derived from a seed with SHA-256 (no shared RNG state,
so components can ask in any order without perturbing each other):

* :meth:`worker_fault` — should this worker attempt die (simulated
  segfault) or wedge (simulated hang)?  Drawn per ``(key, attempt)``,
  so a retried job re-draws: at sub-1.0 rates retries usually land on a
  clean draw and succeed, while a rate of 1.0 makes a spec *poison* —
  every attempt crashes, which is what trips the supervisor's per-spec
  circuit breaker.
* :meth:`journal_crash` — should this journal append die before the
  write, mid-write (a torn record the recovery scan must discard), or
  after the write hit the disk but before the caller learned about it?

Crashes surface as :class:`SimulatedCrash` (in-process tests catch it;
worker children turn the "crash" decision into a real ``SIGKILL`` so the
parent sees an honest dead process).  The profiles in
:data:`HARNESS_PROFILES` bundle rates for the CLI (``--chaos``) and the
CI harness-chaos smoke.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

#: named harness-fault bundles (``--chaos PROFILE`` on repro.serve and
#: scripts/chaos_smoke.py).  Rates are per *decision*: one draw per
#: worker attempt / journal append.
HARNESS_PROFILES: Dict[str, Dict[str, float]] = {
    # workers die mid-job; retries re-draw and usually recover
    "worker-crash": dict(worker_crash_rate=0.35),
    # workers wedge; the supervisor's wall-clock limit reaps them
    "worker-hang": dict(worker_hang_rate=0.35),
    # journal appends crash before/around the write (torn tails included)
    "journal-crash": dict(journal_crash_rate=0.15),
    # everything at once, rates tuned so small smokes still finish
    "harness-chaos": dict(worker_crash_rate=0.25, worker_hang_rate=0.10,
                          journal_crash_rate=0.05),
    # every attempt crashes: a poison job, guaranteed to trip the breaker
    "poison": dict(worker_crash_rate=1.0),
}

#: journal append crash points, in execution order
JOURNAL_CRASH_POINTS = ("before-write", "torn-write", "after-write")


class SimulatedCrash(Exception):
    """An injected harness crash (in-process stand-in for ``kill -9``)."""


class HarnessChaos:
    """Seeded, stateless oracle for harness-level fault decisions.

    Decisions are pure functions of ``(seed, domain, token)`` — two
    instances with the same seed agree everywhere, including across the
    process boundary (the supervisor ships ``(seed, rates)`` to worker
    children, which rebuild the oracle locally).
    """

    __slots__ = ("seed", "worker_crash_rate", "worker_hang_rate",
                 "journal_crash_rate")

    def __init__(self, seed: int = 1, worker_crash_rate: float = 0.0,
                 worker_hang_rate: float = 0.0,
                 journal_crash_rate: float = 0.0):
        for name, rate in (("worker_crash_rate", worker_crash_rate),
                           ("worker_hang_rate", worker_hang_rate),
                           ("journal_crash_rate", journal_crash_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.worker_crash_rate = worker_crash_rate
        self.worker_hang_rate = worker_hang_rate
        self.journal_crash_rate = journal_crash_rate

    # ------------------------------------------------------------------
    @classmethod
    def from_profile(cls, profile: str, seed: int = 1) -> "HarnessChaos":
        try:
            rates = HARNESS_PROFILES[profile]
        except KeyError:
            raise ValueError(f"unknown harness chaos profile {profile!r}; "
                             f"choose from {sorted(HARNESS_PROFILES)}") \
                from None
        return cls(seed=seed, **rates)

    def to_args(self) -> Dict[str, object]:
        """Picklable constructor kwargs (how the oracle crosses to
        worker child processes)."""
        return {"seed": self.seed,
                "worker_crash_rate": self.worker_crash_rate,
                "worker_hang_rate": self.worker_hang_rate,
                "journal_crash_rate": self.journal_crash_rate}

    # ------------------------------------------------------------------
    def _draw(self, domain: str, token: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{domain}:{token}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    # ------------------------------------------------------------------
    # Worker faults
    # ------------------------------------------------------------------
    def worker_fault(self, key: str, attempt: int) -> Optional[str]:
        """``"crash"``, ``"hang"``, or ``None`` for one worker attempt.

        Crash is drawn first so a rate-1.0 crash profile is strictly
        poison regardless of the hang rate.
        """
        if self.worker_crash_rate > 0.0 \
                and self._draw("worker-crash", f"{key}#{attempt}") \
                < self.worker_crash_rate:
            return "crash"
        if self.worker_hang_rate > 0.0 \
                and self._draw("worker-hang", f"{key}#{attempt}") \
                < self.worker_hang_rate:
            return "hang"
        return None

    # ------------------------------------------------------------------
    # Journal crash points
    # ------------------------------------------------------------------
    def journal_crash(self, point: str, token: str) -> bool:
        """Does the journal append identified by ``token`` crash at
        ``point`` (one of :data:`JOURNAL_CRASH_POINTS`)?"""
        if point not in JOURNAL_CRASH_POINTS:
            raise ValueError(f"unknown journal crash point {point!r}")
        if self.journal_crash_rate <= 0.0:
            return False
        return self._draw(f"journal:{point}", token) < self.journal_crash_rate

    def __repr__(self) -> str:
        return (f"<HarnessChaos seed={self.seed} "
                f"crash={self.worker_crash_rate} "
                f"hang={self.worker_hang_rate} "
                f"journal={self.journal_crash_rate}>")
