"""Deterministic fault injection (network, A-stream, CPU fault models).

Install a :class:`FaultInjector` on the engine before machine assembly
(``System`` does this when ``MachineConfig.faults`` is set); components
query it at every potential fault site.  See ``docs/architecture.md`` §9.

:class:`HarnessChaos` (``repro.faults.harness``) is the *harness-level*
counterpart: seeded worker-crash/hang and journal-crash-point decisions
for the supervised worker pool and the serving layer's write-ahead
journal.  See ``docs/architecture.md`` §13.
"""

from repro.faults.harness import (HARNESS_PROFILES, JOURNAL_CRASH_POINTS,
                                  HarnessChaos, SimulatedCrash)
from repro.faults.injector import FaultInjector

#: named fault-rate bundles for the CLI (``--faults PROFILE``) and CI.
#: Each is a set of MachineConfig overrides; ``faults=True`` and the
#: fault seed are added by the caller.  Rates are tuned so tiny CI-sized
#: runs still see every enabled model fire.
FAULT_PROFILES = {
    # gentle background noise: latency jitter + rare stalls/token loss
    "light": dict(fault_net_jitter_rate=0.05, fault_net_jitter_max=20,
                  fault_token_loss_rate=0.02, fault_cpu_stall_rate=0.002,
                  fault_cpu_stall_cycles=200),
    # interconnect-focused: heavy jitter + request drops (NACK/backoff
    # /watchdog paths)
    "network": dict(fault_net_jitter_rate=0.20, fault_net_jitter_max=40,
                    fault_net_drop_rate=0.05),
    # slipstream-focused: corrupted A-streams and lost tokens drive the
    # deviation -> kill -> refork recovery path
    "astream": dict(fault_astream_corrupt_rate=0.05,
                    fault_token_loss_rate=0.10),
    # everything at once, plus graceful degradation with re-promotion
    "chaos": dict(fault_net_jitter_rate=0.20, fault_net_jitter_max=40,
                  fault_net_drop_rate=0.05, fault_token_loss_rate=0.10,
                  fault_astream_corrupt_rate=0.03,
                  fault_cpu_stall_rate=0.005, fault_cpu_stall_cycles=200,
                  degrade_after_reforks=4, degrade_window_sessions=16,
                  repromote_after_sessions=8),
    # every coherence request dropped AND the retry escalation disabled
    # (a practically-infinite retry budget with minimal backoff): no
    # remote fetch ever completes, so a multi-node run only terminates
    # via max_cycles.  A deliberate *stall*, not a perturbation — it
    # exists to exercise wall-clock watchdogs (the Runner's pooled-
    # progress watchdog, the serving layer's per-wave deadline).  Always
    # pair it with max_cycles and n_cmps >= 2 (a single node has no
    # network hops to drop).
    "blackhole": dict(fault_net_drop_rate=1.0,
                      fault_net_max_retries=2**31,
                      fault_net_watchdog=2**31,
                      fault_net_backoff_base=1,
                      fault_net_backoff_cap=1),
}

__all__ = ["FaultInjector", "FAULT_PROFILES", "HARNESS_PROFILES",
           "JOURNAL_CRASH_POINTS", "HarnessChaos", "SimulatedCrash"]
