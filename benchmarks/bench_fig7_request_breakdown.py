"""Figure 7: breakdown of memory requests for shared data.

Classifies every shared-data request in slipstream mode into the paper's
six categories (A/R x Timely/Late/Only), per A-R synchronization policy,
and checks the structural relationships the paper highlights between tight
(G0) and loose (L1) synchronization.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import COMPARISON_CMPS, once, run

from repro.slipstream.arsync import POLICIES
from repro.stats.classify import CATEGORIES


def classify(name, policy):
    n = COMPARISON_CMPS[name]
    result = run(name, "slipstream", n, policy=policy)
    return {"read": result.read_breakdown, "excl": result.excl_breakdown}


def show(name, table):
    print(f"\nFigure 7: {name} (fractions of requests)")
    for policy_name, kinds in table.items():
        for kind in ("read", "excl"):
            cells = " ".join(f"{c.replace('_', '-')}={v:.2f}"
                             for c, v in kinds[kind].items() if v > 0.005)
            print(f"  {policy_name}/{kind}: {cells}")


@pytest.mark.parametrize("name", ("sor", "ocean", "mg"))
def test_request_classes_partition_all_requests(benchmark, name):
    def experiment():
        return {p.name: classify(name, p) for p in POLICIES}

    table = once(benchmark, experiment)
    show(name, table)
    for kinds in table.values():
        for kind in ("read", "excl"):
            total = sum(kinds[kind].values())
            assert total == pytest.approx(1.0, abs=1e-6) or total == 0.0


@pytest.mark.parametrize("name", ("sor", "ocean"))
def test_tight_sync_favors_exclusive_conversion(benchmark, name):
    """Paper: G0 has the largest fraction of A-Timely exclusive requests,
    because stores convert to prefetches only in the same session."""

    def experiment():
        return {p.name: classify(name, p) for p in POLICIES}

    table = once(benchmark, experiment)
    g0_excl = table["G0"]["excl"]["a_timely"] + table["G0"]["excl"]["a_late"]
    l1_excl = table["L1"]["excl"]["a_timely"] + table["L1"]["excl"]["a_late"]
    print(f"\nFigure 7: {name}: A-share of exclusive requests: "
          f"G0={g0_excl:.2f} L1={l1_excl:.2f}")
    assert g0_excl >= l1_excl


def test_correlation_view_r_only_is_small(benchmark):
    """Paper: with slipstream running the same task twice, almost all
    R-stream requests are for data the A-stream also references (small
    R-Only component)."""

    def experiment():
        return classify("sor", POLICIES[0])

    kinds = once(benchmark, experiment)
    print(f"\nFigure 7: sor/L1 R-Only read fraction = "
          f"{kinds['read']['r_only']:.3f}")
    assert kinds["read"]["r_only"] < 0.2
