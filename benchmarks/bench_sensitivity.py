"""Machine-parameter sensitivity of the slipstream benefit (extension).

The paper evaluates one machine point; these benches sweep the parameters
that matter most for the technique and check the expected directions:

* slower network -> remote misses hurt more -> slipstream's prefetching
  matters more (benefit non-decreasing in the interesting range),
* a much larger L2 keeps prefetched lines alive longer.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import once

from repro.experiments.sensitivity import sweep


def test_network_latency_sweep(benchmark):
    results = once(benchmark, lambda: sweep(
        "net_time", values=(10, 50, 150), workload_name="ocean", n_cmps=8))
    print("\nSensitivity (net_time, ocean@8): " +
          " ".join(f"{k}cyc={v:.2f}" for k, v in results.items()))
    # prefetching matters more when remote latency is higher
    assert results[150] >= results[10] * 0.9


def test_memory_latency_sweep(benchmark):
    results = once(benchmark, lambda: sweep(
        "mem_time", values=(20, 150), workload_name="sor", n_cmps=8))
    print("\nSensitivity (mem_time, sor@8): " +
          " ".join(f"{k}cyc={v:.2f}" for k, v in results.items()))
    assert all(v > 0 for v in results.values())


def test_l2_size_sweep(benchmark):
    results = once(benchmark, lambda: sweep(
        "l2_size", values=(32 * 1024, 256 * 1024), workload_name="ocean",
        n_cmps=8))
    print("\nSensitivity (l2_size, ocean@8): " +
          " ".join(f"{k // 1024}KB={v:.2f}" for k, v in results.items()))
    assert all(v > 0 for v in results.values())


def test_port_bandwidth_sweep(benchmark):
    results = once(benchmark, lambda: sweep(
        "port_data_occupancy", values=(8, 120), workload_name="mg",
        n_cmps=8))
    print("\nSensitivity (port occupancy, mg@8): " +
          " ".join(f"{k}cyc={v:.2f}" for k, v in results.items()))
    assert all(v > 0 for v in results.values())
