"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own figures:

* **token depth**: the paper evaluates 0 and 1 initial tokens; we sweep
  deeper buckets to show diminishing/negative returns from letting the
  A-stream run further ahead.
* **SI drain rate**: the paper fixes one line per 4 cycles; sweep it.
* **deviation-check grace**: the cost of over-eager recovery.
* **store conversion**: disabling the skipped-store -> exclusive-prefetch
  conversion isolates its contribution.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import once

from repro.config import scaled_config
from repro.experiments.driver import run_mode
from repro.slipstream.arsync import ARSyncPolicy, G1
from repro.workloads import make


def test_token_depth_sweep(benchmark):
    def experiment():
        config = scaled_config(8)
        single = run_mode(make("sor"), config, "single").exec_cycles
        series = {}
        for tokens in (0, 1, 2, 4):
            policy = ARSyncPolicy(f"L{tokens}", "local", tokens)
            slip = run_mode(make("sor"), config, "slipstream",
                            policy=policy).exec_cycles
            series[tokens] = single / slip
        return series

    series = once(benchmark, experiment)
    print("\nAblation (token depth, sor@8): " +
          " ".join(f"{k}tok={v:.2f}" for k, v in series.items()))
    assert all(v > 0 for v in series.values())


def test_si_drain_rate_sweep(benchmark):
    def experiment():
        series = {}
        for interval in (1, 4, 16, 64):
            config = scaled_config(8, si_drain_interval=interval)
            result = run_mode(make("cg"), config, "slipstream",
                              policy=G1, si=True)
            series[interval] = result.exec_cycles
        return series

    series = once(benchmark, experiment)
    print("\nAblation (SI drain interval, cg@8): " +
          " ".join(f"{k}cyc={v}" for k, v in series.items()))
    # Draining 64x slower must not be faster than the paper's rate.
    assert series[64] >= series[4] * 0.95


def test_deviation_grace_ablation(benchmark):
    """With zero grace (the paper's literal check), lockstep ties cause
    spurious recoveries; the run must still complete correctly."""

    def experiment():
        strict = scaled_config(4, deviation_lag_sessions=0)
        relaxed = scaled_config(4)
        out = {}
        out["strict"] = run_mode(make("sor"), strict, "slipstream",
                                 policy=G1)
        out["relaxed"] = run_mode(make("sor"), relaxed, "slipstream",
                                  policy=G1)
        return {k: (v.exec_cycles, v.recoveries) for k, v in out.items()}

    result = once(benchmark, experiment)
    print(f"\nAblation (deviation grace, sor@4): strict="
          f"{result['strict']}, relaxed={result['relaxed']}")
    assert result["relaxed"][1] == 0


def test_adaptive_policy_vs_static(benchmark):
    """Extension (paper Section 6 future work): dynamic A-R policy
    selection should be competitive with the best static policy without
    knowing it in advance."""

    def experiment():
        config = scaled_config(8)
        single = run_mode(make("ocean"), config, "single").exec_cycles
        out = {}
        from repro.slipstream.arsync import POLICIES
        for policy in POLICIES:
            slip = run_mode(make("ocean"), config, "slipstream",
                            policy=policy).exec_cycles
            out[policy.name] = single / slip
        adaptive = run_mode(make("ocean"), config, "slipstream",
                            policy=POLICIES[0], adaptive=True)
        out["adaptive"] = single / adaptive.exec_cycles
        out["switches"] = adaptive.policy_switches
        return out

    series = once(benchmark, experiment)
    print("\nAblation (adaptive policy, ocean@8): " +
          " ".join(f"{k}={v if k == 'switches' else round(v, 2)}"
                   for k, v in series.items()))
    static_best = max(v for k, v in series.items()
                      if k not in ("adaptive", "switches"))
    static_worst = min(v for k, v in series.items()
                       if k not in ("adaptive", "switches"))
    # Chosen online with no oracle: must stay within 15% of the best
    # static policy and never fall below the worst one (see the known
    # limitation note in repro.slipstream.adaptive).
    assert series["adaptive"] > 0.85 * static_best
    assert series["adaptive"] >= static_worst * 0.98


def test_pattern_forwarding_extension(benchmark):
    """Extension (paper Section 6 main future work): explicit A->R access
    pattern forwarding re-fetches lost/transparent copies early."""

    def experiment():
        from repro.slipstream.arsync import G1
        config = scaled_config(16)
        single = run_mode(make("mg"), config, "single").exec_cycles
        base = run_mode(make("mg"), config, "slipstream", policy=G1,
                        si=True).exec_cycles
        fwd = run_mode(make("mg"), config, "slipstream", policy=G1,
                       si=True, forwarding=True)
        return {"slip+si": single / base,
                "slip+si+fwd": single / fwd.exec_cycles,
                "prefetches": fwd.forwarded_prefetches}

    series = once(benchmark, experiment)
    print("\nAblation (pattern forwarding, mg@16): " + str(series))
    assert series["slip+si+fwd"] >= series["slip+si"] * 0.98


def test_speculative_barrier_replay_negative_result(benchmark):
    """Extension negative result: replaying the next session's pattern at
    barrier ENTRY (overlapping the wait) issues more prefetches but loses
    to plain session-entry forwarding — the prefetches are premature, the
    exact hazard the A-R token protocol exists to prevent."""

    def experiment():
        from repro.slipstream.arsync import G1
        config = scaled_config(16)
        single = run_mode(make("mg"), config, "single").exec_cycles
        plain = run_mode(make("mg"), config, "slipstream", policy=G1,
                         si=True, forwarding=True)
        spec = run_mode(make("mg"), config, "slipstream", policy=G1,
                        si=True, speculative_barriers=True)
        return {"forwarding": single / plain.exec_cycles,
                "speculative": single / spec.exec_cycles,
                "fwd_prefetches": plain.forwarded_prefetches,
                "spec_prefetches": spec.forwarded_prefetches}

    series = once(benchmark, experiment)
    print("\nAblation (speculative barrier replay, mg@16): " + str(series))
    assert series["spec_prefetches"] > series["fwd_prefetches"]


def test_migratory_sharing_optimization(benchmark):
    """Extension (paper Section 5 pointer [10]): directory-detected
    migratory sharing grants exclusive ownership on reads."""

    def experiment():
        config = scaled_config(8)
        out = {}
        for name in ("water-ns", "cg"):
            base = run_mode(make(name), config, "single").exec_cycles
            opt = run_mode(make(name), config, "single", migratory=True)
            out[name] = {"speedup": base / opt.exec_cycles,
                         "grants": opt.fabric_stats["migratory_grants"]}
        return out

    table = once(benchmark, experiment)
    print("\nAblation (migratory optimization): " + str(table))
    assert table["water-ns"]["grants"] > 0
    assert table["water-ns"]["speedup"] > 1.0


def test_exclusive_prefetch_contribution(benchmark):
    """Zeroing the same-session window (via a permanently-ahead A-stream)
    removes store conversion; compare converted counts."""

    def experiment():
        config = scaled_config(8)
        tight = run_mode(make("sor"), config, "slipstream",
                         policy=ARSyncPolicy("G0", "global", 0))
        loose = run_mode(make("sor"), config, "slipstream",
                         policy=ARSyncPolicy("L4", "local", 4))
        return {"G0": tight.stores_converted, "L4": loose.stores_converted}

    counts = once(benchmark, experiment)
    print(f"\nAblation (store conversion window, sor@8): {counts}")
    # tight sync keeps A in-session more often -> more conversions
    assert counts["G0"] >= counts["L4"]
