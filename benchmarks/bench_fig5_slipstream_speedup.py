"""Figure 5: speedup of slipstream (four A-R policies) and double mode,
relative to single mode.

Each benchmark prints the full series at its comparison CMP count and
asserts the paper's qualitative outcome for it:

* slipstream beats the best of single/double for CG, MG, Ocean, SOR, SP,
  and Water-NS at 16 CMPs (and FFT at 4 in the paper; see EXPERIMENTS.md
  for the FFT deviation),
* LU and Water-SP still have concurrency to exploit, so double wins and
  slipstream only improves on single.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import BEST_POLICY, COMPARISON_CMPS, once, run

from repro.slipstream.arsync import POLICIES

#: benchmarks where slipstream must beat best(single, double)
SLIPSTREAM_WINS = ("cg", "mg", "ocean", "sor", "sp", "water-ns")
#: benchmarks where double remains the best mode
DOUBLE_WINS = ("lu", "water-sp")


def full_series(name, n):
    single = run(name, "single", n).exec_cycles
    series = {"double": single / run(name, "double", n).exec_cycles}
    for policy in POLICIES:
        slip = run(name, "slipstream", n, policy=policy).exec_cycles
        series[policy.name] = single / slip
    return series


@pytest.mark.parametrize("name", SLIPSTREAM_WINS)
def test_slipstream_beats_best_mode(benchmark, name):
    n = COMPARISON_CMPS[name]
    series = once(benchmark, lambda: full_series(name, n))
    best_slip = max(series[p.name] for p in POLICIES)
    print(f"\nFigure 5 @{n} CMPs: {name}: " +
          " ".join(f"{k}={v:.2f}" for k, v in series.items()))
    assert best_slip > max(1.0, series["double"])


@pytest.mark.parametrize("name", DOUBLE_WINS)
def test_double_still_wins_for_scalable_kernels(benchmark, name):
    n = COMPARISON_CMPS[name]
    series = once(benchmark, lambda: full_series(name, n))
    best_slip = max(series[p.name] for p in POLICIES)
    print(f"\nFigure 5 @{n} CMPs: {name}: " +
          " ".join(f"{k}={v:.2f}" for k, v in series.items()))
    # "there is still a significant amount of concurrency available"
    assert series["double"] > best_slip
    # "slipstream shows some improvement over single"
    assert best_slip > 0.95


def test_fft_slipstream_at_4_cmps(benchmark):
    series = once(benchmark, lambda: full_series("fft", 4))
    best_slip = max(series[p.name] for p in POLICIES)
    print("\nFigure 5 @4 CMPs: fft: " +
          " ".join(f"{k}={v:.2f}" for k, v in series.items()))
    # Our double mode holds up better than the paper's for FFT (see
    # EXPERIMENTS.md); slipstream must still clearly beat single mode.
    assert best_slip > 1.05


def test_no_consistent_policy_winner(benchmark):
    """Paper: 'There is no consistent winner among the four A-R
    synchronization methods.'"""

    def experiment():
        winners = set()
        for name in ("sor", "mg", "cg"):
            n = COMPARISON_CMPS[name]
            series = full_series(name, n)
            winners.add(max((p.name for p in POLICIES),
                            key=lambda k: series[k]))
        return winners

    winners = once(benchmark, experiment)
    print(f"\nFigure 5: per-benchmark best policies: {sorted(winners)}")
    assert len(winners) >= 2
