"""Figure 9: transparent-load breakdown.

With self-invalidation support enabled (G1 A-R synchronization, as in the
paper's Section 4 experiments), a sizable share of A-stream read requests
is issued as transparent loads; the directory answers some with
transparent replies (line was exclusive elsewhere) and upgrades the rest
to normal loads.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import COMPARISON_CMPS, SECTION4_SET, once, run

from repro.slipstream.arsync import G1


def transparent_stats(name):
    n = COMPARISON_CMPS[name]
    result = run(name, "slipstream", n, policy=G1, si=True)
    # a_read_requests already includes transparent-kind fetches
    a_reads = max(result.a_read_requests, 1)
    reached = result.transparent_replies + result.upgraded_transparent
    return {
        "issued_pct": 100.0 * reached / a_reads,
        "transparent_pct": 100.0 * result.transparent_replies / a_reads,
        "upgraded_pct": 100.0 * result.upgraded_transparent / a_reads,
    }


@pytest.mark.parametrize("name", SECTION4_SET)
def test_transparent_load_breakdown(benchmark, name):
    stats = once(benchmark, lambda: transparent_stats(name))
    print(f"\nFigure 9: {name}: issued={stats['issued_pct']:.1f}% of A "
          f"reads (transparent={stats['transparent_pct']:.1f}%, "
          f"upgraded={stats['upgraded_pct']:.1f}%)")
    # transparent loads are issued, and the two reply kinds partition them
    assert stats["issued_pct"] > 0
    assert stats["transparent_pct"] + stats["upgraded_pct"] == \
        pytest.approx(stats["issued_pct"], abs=1e-6)


def test_average_issue_rate_in_paper_band(benchmark):
    """Paper: 19-45% (average 27%) of A-stream reads become transparent
    loads.  Our kernels are scaled, so accept a generous band around it."""

    def experiment():
        rates = [transparent_stats(name)["issued_pct"]
                 for name in SECTION4_SET]
        return sum(rates) / len(rates)

    average = once(benchmark, experiment)
    print(f"\nFigure 9: mean transparent-issue rate = {average:.1f}% "
          f"(paper: 27%)")
    assert 5.0 < average < 80.0
