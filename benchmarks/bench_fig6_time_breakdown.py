"""Figure 6: execution-time breakdown for single (S), double (D), and
slipstream (R-stream, A-stream), relative to single mode.

Regenerates the paper's observations:

* reduction in stall time contributes most of slipstream's gain,
* A-R synchronization time appears only on the A-stream's bar (it shows
  how much the A-stream was shortened),
* LU and Water-SP show little stall in single mode, which is why
  slipstream cannot help them.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import (BEST_POLICY, COMPARISON_CMPS, once, run,
                    run_best_slipstream)

from repro.stats.timebreakdown import CATEGORIES


def breakdown_set(name):
    n = COMPARISON_CMPS[name]
    single = run(name, "single", n)
    double = run(name, "double", n)
    slip = run_best_slipstream(name, n)
    base = single.mean_task_breakdown.total

    def norm(breakdown):
        return {c: 100.0 * getattr(breakdown, c) / base for c in CATEGORIES}

    return {
        "S": norm(single.mean_task_breakdown),
        "D": norm(double.mean_task_breakdown),
        "R": norm(slip.mean_task_breakdown),
        "A": norm(slip.mean_astream_breakdown),
    }


def show(name, bars):
    print(f"\nFigure 6: {name} (policy {BEST_POLICY[name]}, % of single)")
    for mode, values in bars.items():
        cells = " ".join(f"{c}={v:5.1f}" for c, v in values.items())
        print(f"  {mode}: {cells}")


@pytest.mark.parametrize("name", ("sor", "ocean", "mg", "sp"))
def test_stall_reduction_drives_slipstream_gain(benchmark, name):
    bars = once(benchmark, lambda: breakdown_set(name))
    show(name, bars)
    # the R-stream's stall is below single mode's stall
    assert bars["R"]["stall"] < bars["S"]["stall"]
    # only the A-stream accumulates A-R synchronization time
    assert bars["A"]["arsync"] > 0
    assert bars["R"]["arsync"] == 0
    assert bars["S"]["arsync"] == 0


@pytest.mark.parametrize("name", ("lu", "water-sp"))
def test_low_stall_kernels_gain_little(benchmark, name):
    bars = once(benchmark, lambda: breakdown_set(name))
    show(name, bars)
    # single-mode profile is compute/synchronization dominated
    total = sum(bars["S"].values())
    assert bars["S"]["stall"] / total < 0.5


@pytest.mark.parametrize("name", ("cg", "water-ns"))
def test_lock_kernels_keep_lock_time_on_r_only(benchmark, name):
    bars = once(benchmark, lambda: breakdown_set(name))
    show(name, bars)
    # the A-stream skips locks entirely
    assert bars["A"]["lock"] == 0
    assert bars["R"]["lock"] > 0


def test_double_busy_is_half_of_single(benchmark):
    bars = once(benchmark, lambda: breakdown_set("sor"))
    # per-task busy work halves when the task count doubles
    assert bars["D"]["busy"] == pytest.approx(bars["S"]["busy"] / 2, rel=0.2)
