"""Figure 4: speedup of single mode over sequential execution.

Regenerates the three scalability groups the paper identifies:

* keep scaling at 16 CMPs: Water-SP, LU, SOR,
* diminishing returns:     Water-NS, Ocean, MG, CG, SP,
* degrading:               FFT (beyond 4 CMPs).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import once, run, sequential_cycles

SCALING = ("water-sp", "lu", "sor")
DIMINISHING = ("water-ns", "ocean", "mg", "cg", "sp")


@pytest.mark.parametrize("name", SCALING)
def test_scaling_group_keeps_improving(benchmark, name):
    def experiment():
        seq = sequential_cycles(name)
        return {n: seq / run(name, "single", n).exec_cycles
                for n in (2, 8, 16)}

    series = once(benchmark, experiment)
    print(f"\nFigure 4: {name}: " +
          " ".join(f"{n}:{v:.2f}" for n, v in series.items()))
    assert series[16] > series[8] > series[2]
    assert series[16] > 4.0


@pytest.mark.parametrize("name", DIMINISHING)
def test_diminishing_group_flattens(benchmark, name):
    def experiment():
        seq = sequential_cycles(name)
        return {n: seq / run(name, "single", n).exec_cycles
                for n in (2, 8, 16)}

    series = once(benchmark, experiment)
    print(f"\nFigure 4: {name}: " +
          " ".join(f"{n}:{v:.2f}" for n, v in series.items()))
    # diminishing: the 8->16 step gains far less than ideal (2x)
    assert series[16] < series[8] * 1.6


def test_fft_stops_scaling(benchmark):
    def experiment():
        seq = sequential_cycles("fft")
        return {n: seq / run("fft", "single", n).exec_cycles
                for n in (2, 4, 8, 16)}

    series = once(benchmark, experiment)
    print("\nFigure 4: fft: " +
          " ".join(f"{n}:{v:.2f}" for n, v in series.items()))
    # FFT's communication dominates early; the paper stops comparing at 4.
    assert series[4] < 2.0
    assert series[16] < series[8] * 1.5
