"""Table 1: verify the machine's miss latencies and measure raw protocol
transaction cost.

The paper quotes 170 cycles for a local clean miss and 290 for a remote
clean miss as the defining property of the Table 1 configuration; this
bench regenerates both numbers from the protocol itself.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import once

from repro.config import MachineConfig
from repro.machine.system import System
from repro.sim import Process


def _measure_miss(local: bool) -> int:
    system = System(MachineConfig(n_cmps=4))
    space = system.space
    requester = 0
    target_home = 0 if local else 2
    line = next(l for l in range(0, 4096, 64)
                if space.home_of_line(l) == target_home)
    out = {}

    def txn():
        start = system.engine.now
        yield from system.fabric.fetch(requester, line, "read", "R")
        out["elapsed"] = system.engine.now - start

    Process(system.engine, txn())
    system.engine.run()
    return out["elapsed"]


def test_local_miss_latency(benchmark):
    elapsed = once(benchmark, lambda: _measure_miss(local=True))
    print(f"\nTable 1 check: local clean miss = {elapsed} cycles "
          f"(paper: 170)")
    assert elapsed == 170


def test_remote_miss_latency(benchmark):
    elapsed = once(benchmark, lambda: _measure_miss(local=False))
    print(f"\nTable 1 check: remote clean miss = {elapsed} cycles "
          f"(paper: 290)")
    assert elapsed == 290


def test_protocol_transaction_throughput(benchmark):
    """Raw simulator speed: coherence transactions per wall-second."""

    def storm():
        system = System(MachineConfig(n_cmps=8))

        def requester(node, lines):
            for line in lines:
                yield from system.fabric.fetch(node, line, "read", "R")

        for node in range(8):
            lines = range(node * 4096 * 16 // 64, node * 4096 * 16 // 64 + 200)
            Process(system.engine, requester(node, list(lines)))
        system.engine.run()
        return system.fabric.transactions

    transactions = benchmark(storm)
    assert transactions == 8 * 200
