"""Figure 1: speedup of two tasks per CMP (double) vs one (single).

Regenerates the paper's opening observation: applying the second processor
to more parallel tasks yields diminishing (or negative) returns as the CMP
count grows.  One benchmark entry per kernel at 16 CMPs, plus a sweep for
the paper's six plotted kernels at {2, 4, 8, 16}.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import once, run

from repro.workloads import PAPER_ORDER

#: the six kernels plotted in Figure 1
FIG1_SET = ("water-sp", "mg", "sor", "cg", "water-ns", "ocean")


@pytest.mark.parametrize("name", PAPER_ORDER)
def test_double_vs_single_at_16(benchmark, name):
    def experiment():
        single = run(name, "single", 16).exec_cycles
        double = run(name, "double", 16).exec_cycles
        return single / double

    ratio = once(benchmark, experiment)
    print(f"\nFigure 1 @16 CMPs: {name}: double/single speedup = {ratio:.2f}")
    # the scalability-limit regime: double never reaches its ideal 2x
    assert ratio < 2.0


@pytest.mark.parametrize("name", ("sor", "ocean"))
def test_double_gain_shrinks_with_cmp_count(benchmark, name):
    def experiment():
        series = {}
        for n in (2, 8, 16):
            single = run(name, "single", n).exec_cycles
            double = run(name, "double", n).exec_cycles
            series[n] = single / double
        return series

    series = once(benchmark, experiment)
    row = " ".join(f"{n}:{v:.2f}" for n, v in series.items())
    print(f"\nFigure 1 sweep: {name}: {row}")
    # the paper's headline: the double-mode advantage erodes with scale
    assert series[16] < series[2]
