"""Figure 10: performance with transparent loads and self-invalidation.

Three slipstream configurations (all one-token global, like the paper):
prefetching only, prefetching + transparent loads, and prefetching +
transparent loads + self-invalidation, each relative to the best of single
and double mode.

Checks the paper's qualitative findings:

* for prefetch-friendly kernels (FFT, MG, SOR) transparent loads alone can
  *reduce* performance (they take away prefetch benefit),
* self-invalidation recovers that loss and helps lock/producer-consumer
  kernels the most (CG, SP, Water-NS).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import COMPARISON_CMPS, SECTION4_SET, once, run

from repro.slipstream.arsync import G1


def three_configs(name):
    n = COMPARISON_CMPS[name]
    single = run(name, "single", n).exec_cycles
    double = run(name, "double", n).exec_cycles
    best = min(single, double)
    return {
        "prefetch": best / run(name, "slipstream", n,
                               policy=G1).exec_cycles,
        "+tl": best / run(name, "slipstream", n, policy=G1,
                          transparent=True).exec_cycles,
        "+tl+si": best / run(name, "slipstream", n, policy=G1,
                             si=True).exec_cycles,
    }


@pytest.mark.parametrize("name", SECTION4_SET)
def test_three_slipstream_configs(benchmark, name):
    series = once(benchmark, lambda: three_configs(name))
    print(f"\nFigure 10: {name}: " +
          " ".join(f"{k}={v:.2f}" for k, v in series.items()))
    assert all(v > 0 for v in series.values())


def test_transparent_loads_alone_can_hurt_prefetch_kernels(benchmark):
    """Paper: 'In some cases (FFT, MG, and SOR), using transparent loads
    decreases performance because of the reduction in prefetching.'"""

    def experiment():
        return {name: three_configs(name) for name in ("sor", "mg")}

    table = once(benchmark, experiment)
    hurt = [name for name, series in table.items()
            if series["+tl"] < series["prefetch"]]
    print(f"\nFigure 10: TL-alone hurts: {hurt}")
    assert hurt, "transparent loads should cost prefetch benefit somewhere"


def test_si_recovers_or_extends_gain_for_lock_kernels(benchmark):
    """Paper: adding SI gives extra speedup for CG, SP, and Water-NS."""

    def experiment():
        return {name: three_configs(name)
                for name in ("cg", "sp", "water-ns")}

    table = once(benchmark, experiment)
    for name, series in table.items():
        print(f"\nFigure 10: {name}: " +
              " ".join(f"{k}={v:.2f}" for k, v in series.items()))
    improved = sum(series["+tl+si"] >= series["+tl"]
                   for series in table.values())
    assert improved >= 2
