"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables or figures via
pytest-benchmark.  Simulations are deterministic, so every benchmark runs
``pedantic`` with a single round — the measured time is the simulation
cost, and the *output* (printed series and shape assertions) is the
reproduction result.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from repro.config import scaled_config
from repro.experiments.driver import RunResult, run_mode, sequential_baseline
from repro.slipstream.arsync import POLICIES, policy_by_name
from repro.workloads import PAPER_ORDER, make

#: best prefetch-only A-R policy per benchmark, from the Figure 5 sweep
#: (the paper likewise reports a per-benchmark winner; see EXPERIMENTS.md)
BEST_POLICY = {
    "cg": "L1",
    "fft": "G1",
    "lu": "G1",
    "mg": "G0",
    "ocean": "G0",
    "sor": "L1",
    "sp": "G0",
    "water-ns": "G1",
    "water-sp": "G0",
}

#: the CMP count at which each benchmark's slipstream comparison runs
COMPARISON_CMPS = {name: (4 if name == "fft" else 16)
                   for name in PAPER_ORDER}

#: benchmarks the paper carries into the Section 4 experiments
SECTION4_SET = ("cg", "fft", "mg", "ocean", "sor", "sp", "water-ns")


def run(name: str, mode: str, n_cmps: int, **kwargs) -> RunResult:
    """One simulation with the standard experiment configuration."""
    return run_mode(make(name), scaled_config(n_cmps), mode, **kwargs)


def run_best_slipstream(name: str, n_cmps: int, **kwargs) -> RunResult:
    policy = policy_by_name(BEST_POLICY[name])
    return run(name, "slipstream", n_cmps, policy=policy, **kwargs)


def sequential_cycles(name: str) -> int:
    return sequential_baseline(make(name), scaled_config(1)).exec_cycles


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
